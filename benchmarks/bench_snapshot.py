"""Snapshot warm start: cold index build vs snapshot load.

The paper's cost asymmetry is that index construction (partitioning,
distance matrices, group tables, the VIP-Tree's per-door
materialization) is expensive while queries are cheap — "An
Experimental Analysis of Indoor Spatial Queries" measures construction
dominating end-to-end cost for composite indexes. The snapshot store
(:mod:`repro.storage`) amortizes that cost across process lifetimes;
this benchmark quantifies it:

* **cold** — ``VIPTree.build(space)`` plus embedding the objects into a
  fresh ``ObjectIndex`` (what every process start paid before
  snapshots),
* **load** — ``load_snapshot(path, space=space)`` restoring the index,
  object set and object embedding from one integrity-checked file
  (minimum over several runs; the venue is in memory in both cases).

It also proves the loaded engine is *the same engine*: a mixed
update+query stream replayed against a freshly built engine and a
snapshot-loaded one must produce element-wise identical answers, with
kNN/range additionally cross-checked against the Dijkstra oracle.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_snapshot.py --profile small

or through pytest (asserts load is at least 5x faster than cold build
on the largest fixture venue — Men-2 at the "paper" profile, 2,880
doors — and that loaded answers are identical to fresh ones)::

    python -m pytest benchmarks/bench_snapshot.py
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

from repro import ObjectIndex, VIPTree
from repro.baselines import DijkstraOracle
from repro.bench.reporting import Table
from repro.datasets import load_venue, moving_objects, random_objects
from repro.engine import QueryEngine, replay
from repro.storage import load_snapshot, save_snapshot

#: the acceptance venue: the largest fixture venue the generators
#: produce (matches the paper's biggest indexable dataset, Men-2).
ACCEPTANCE_VENUE = ("Men-2", "paper")
MIN_SPEEDUP = 5.0


def measure_snapshot(
    venue: str = "Men-2",
    profile: str = "paper",
    n_objects: int = 100,
    seed: int = 13,
    repeats: int = 5,
) -> dict:
    """Cold-build vs snapshot-load timings for one venue.

    Returns a dict with ``cold_s``, ``save_s``, ``load_s`` (min over
    ``repeats``), ``bytes`` and ``speedup``.
    """
    space = load_venue(venue, profile)
    start = time.perf_counter()
    tree = VIPTree.build(space)
    objects = random_objects(space, n_objects, seed=seed)
    index = ObjectIndex(tree, objects)
    cold_s = time.perf_counter() - start

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "bench.snap"
        start = time.perf_counter()
        save_snapshot(path, tree, index)
        save_s = time.perf_counter() - start
        size = path.stat().st_size
        load_s = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            snap = load_snapshot(path, space=space)
            load_s = min(load_s, time.perf_counter() - start)
        # the load must actually be complete: spot-check one answer
        assert snap.index.shortest_distance(0, space.num_doors - 1) == \
            tree.shortest_distance(0, space.num_doors - 1)
    return {
        "venue": venue,
        "profile": profile,
        "doors": space.num_doors,
        "cold_s": cold_s,
        "save_s": save_s,
        "load_s": load_s,
        "bytes": size,
        "speedup": cold_s / max(load_s, 1e-9),
    }


def _neighbors(result) -> list[tuple[float, int]]:
    return [(n.distance, n.object_id) for n in result]


def check_loaded_equivalence(
    venue: str = "MC",
    profile: str = "small",
    n_objects: int = 40,
    count: int = 300,
    seed: int = 29,
) -> int:
    """Replay a mixed update+query stream on a fresh and a loaded engine.

    Every answer must be element-wise identical, and post-replay
    kNN/range answers must match the Dijkstra oracle. Returns the number
    of compared events.
    """
    space = load_venue(venue, profile)
    tree = VIPTree.build(space)
    objects = random_objects(space, n_objects, seed=seed)
    fresh = QueryEngine(tree, ObjectIndex(tree, objects))

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "equiv.snap"
        fresh.save_snapshot(path)
        loaded = QueryEngine.from_snapshot(path, space=space)

    stream = moving_objects(
        space, fresh.objects, count,
        update_ratio=1.0, churn=0.2, seed=seed, d2d=tree.d2d,
        mix={"knn": 0.4, "distance": 0.2, "range": 0.2, "path": 0.2},
    )
    got_fresh, _ = replay(fresh, stream)
    got_loaded, _ = replay(loaded, stream)
    assert len(got_fresh) == len(got_loaded) == count
    for i, (a, b) in enumerate(zip(got_fresh, got_loaded)):
        kind = getattr(stream[i], "kind", "update")
        if kind in ("knn", "range"):
            assert _neighbors(a) == _neighbors(b), f"event {i} ({kind}) diverged"
        elif kind == "path":
            assert (a.distance, a.doors) == (b.distance, b.doors), f"event {i} diverged"
        else:  # distance result or update return value
            assert a == b, f"event {i} ({kind}) diverged"

    oracle = DijkstraOracle(space, tree.d2d)
    sources = [q.source for q in stream if getattr(q, "kind", None) == "knn"][:8]
    for q in sources:
        got = [(round(d, 8), oid) for d, oid in _neighbors(loaded.knn(q, 5))]
        want = [(round(d, 8), oid) for d, oid in oracle.knn(q, loaded.objects, 5)]
        assert got == want, "loaded engine diverged from the oracle after updates"
    return count


def test_snapshot_load_at_least_5x_cold_build():
    """Acceptance: loading the largest fixture venue's snapshot is at
    least 5x faster than cold-building its index + object embedding."""
    venue, profile = ACCEPTANCE_VENUE
    result = measure_snapshot(venue, profile)
    assert result["speedup"] >= MIN_SPEEDUP, (
        f"{venue}/{profile}: snapshot load {result['load_s'] * 1e3:.1f}ms is only "
        f"{result['speedup']:.1f}x faster than cold build "
        f"{result['cold_s'] * 1e3:.1f}ms (need >= {MIN_SPEEDUP}x)"
    )


def test_loaded_engine_identical_to_fresh():
    """Acceptance: a snapshot-loaded engine answers a mixed update+query
    workload identically to a freshly built one (oracle-checked)."""
    compared = check_loaded_equivalence()
    assert compared == 300


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--venues", nargs="+", default=["MC", "Men-2", "CL-2"])
    parser.add_argument("--profile", default="small", choices=("tiny", "small", "paper"))
    parser.add_argument("--objects", type=int, default=100)
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--json", metavar="FILE", help="also write results as JSON")
    args = parser.parse_args(argv)

    table = Table(
        title=f"Snapshot warm start — profile={args.profile}, "
        f"{args.objects} objects (load = min over {args.repeats} runs)",
        headers=["venue", "doors", "cold build", "save", "load", "size KiB", "speedup"],
        notes="cold = VIPTree.build + ObjectIndex; load = load_snapshot(path, space=...)",
    )
    results = []
    for venue in args.venues:
        r = measure_snapshot(venue, args.profile, n_objects=args.objects,
                             seed=args.seed, repeats=args.repeats)
        results.append(r)
        table.add_row(
            venue,
            r["doors"],
            f"{r['cold_s'] * 1e3:.1f}ms",
            f"{r['save_s'] * 1e3:.1f}ms",
            f"{r['load_s'] * 1e3:.1f}ms",
            r["bytes"] / 1024,
            f"{r['speedup']:.1f}x",
        )
    print(table.render())
    compared = check_loaded_equivalence(profile="tiny")
    print(f"loaded-engine equivalence: {compared} mixed events identical to fresh "
          "(kNN/range oracle-checked)")
    if args.json:
        Path(args.json).write_text(json.dumps(results, indent=2))
        print(f"json written to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
