"""Fig 7: effect of the minimum degree t on VIP-Tree construction and
query cost (paper §4.1, on the Clayton venue)."""

import pytest

from repro import VIPTree
from repro.bench.harness import VenueContext

from bench_common import PROFILE


@pytest.fixture(scope="module")
def cl_context():
    return VenueContext("CL", PROFILE)


@pytest.mark.parametrize("t", [2, 10, 60])
def test_construction_vs_t(benchmark, cl_context, t):
    """Fig 7(a): indexing time grows with t."""
    space = cl_context.space
    tree = benchmark.pedantic(
        VIPTree.build, args=(space,), kwargs={"t": t, "d2d": cl_context.d2d},
        rounds=2, iterations=1,
    )
    assert tree.stats().num_leaves >= 1


@pytest.mark.parametrize("t", [2, 10, 60])
def test_distance_query_vs_t(benchmark, cl_context, t):
    """Fig 7(b): shortest distance time is flat in t (O(ρ²), height-free)."""
    tree = VIPTree.build(cl_context.space, t=t, d2d=cl_context.d2d)
    pairs = cl_context.pairs(32)
    state = {"i": 0}

    def run():
        s, q = pairs[state["i"] % len(pairs)]
        state["i"] += 1
        return tree.shortest_distance(s, q)

    benchmark(run)


@pytest.mark.parametrize("t", [2, 10, 60])
def test_knn_query_vs_t(benchmark, cl_context, t):
    """Fig 7(b): kNN time grows with t (less pruning in fat nodes)."""
    from repro import ObjectIndex

    tree = VIPTree.build(cl_context.space, t=t, d2d=cl_context.d2d)
    objects = cl_context.objects(10)
    oi = ObjectIndex(tree, objects)
    queries = cl_context.queries(32)
    state = {"i": 0}

    def run():
        q = queries[state["i"] % len(queries)]
        state["i"] += 1
        return tree.knn(oi, q, 5)

    benchmark(run)
