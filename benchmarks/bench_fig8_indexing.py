"""Fig 8: indexing cost — construction time (a) and index size (b) for
every index the paper compares."""

import pytest

from repro import IPTree, VIPTree
from repro.baselines import DistanceMatrix, GTree, Road


def test_build_iptree(benchmark, ctx):
    tree = benchmark.pedantic(
        IPTree.build, args=(ctx.space,), kwargs={"d2d": ctx.d2d}, rounds=3, iterations=1
    )
    assert tree.root_id is not None


def test_build_viptree(benchmark, ctx):
    tree = benchmark.pedantic(
        VIPTree.build, args=(ctx.space,), kwargs={"d2d": ctx.d2d}, rounds=3, iterations=1
    )
    assert tree.vip_store


def test_build_gtree(benchmark, ctx):
    tree = benchmark.pedantic(
        GTree, args=(ctx.space, ctx.d2d), rounds=2, iterations=1
    )
    assert tree.nodes


def test_build_road(benchmark, ctx):
    index = benchmark.pedantic(
        Road, args=(ctx.space, ctx.d2d), rounds=2, iterations=1
    )
    assert index.rnets


def test_build_distmx(benchmark, ctx):
    """The paper's pain point: one Dijkstra per door, O(D²) storage."""
    matrix = benchmark.pedantic(
        DistanceMatrix, args=(ctx.space, ctx.d2d), rounds=1, iterations=1
    )
    assert matrix.dist.shape[0] == ctx.space.num_doors


def test_fig8b_size_ordering(ctx):
    """Fig 8(b)'s shape: DistMx dominates the tree indexes in storage;
    VIP costs more than IP (the materialization) but stays in the same
    ballpark, not the matrix's O(D²)."""
    ip = ctx.iptree.memory_bytes()
    vip = ctx.viptree.memory_bytes()
    mx = ctx.distmx.memory_bytes()
    assert ip < vip
    assert vip < mx
