"""Leaf-scoped vs full-flush cache invalidation on a moving-object mix.

The engine's result caches used to be flushed entirely on every object
update, so any workload that interleaves updates with queries ran at a
near-zero result-cache hit rate. Leaf-scoped invalidation
(:mod:`repro.engine.invalidation`) tags each cached kNN/range entry
with its conservative bound-ball leaf closure and drops only the
entries tagged with the leaf(s) an update touches.

This benchmark replays the workload that distinction is for: a
**leaf-local moving-object mix** at an update:query ratio of 1:8 —
a handful of objects jitter inside their own partition (same leaf
before and after, the common case for indoor tracking), while queries
repeat from a fixed pool, exactly the situation where almost every
cached answer is provably unaffected by the update.

Two claims are asserted (CI runs the pytest entry points):

* **Identity** — the scoped engine's answers are element-wise identical
  (``==``) to the full-flush engine's on the same event stream.
* **Hit factor** — the scoped engine serves at least
  ``INVALIDATION_BENCH_MIN_FACTOR`` x (default 3.0) as many result-cache
  hits as the full-flush engine on the 1:8 mix (Laplace-smoothed
  ratio, so a zero-hit baseline does not divide by zero). Hit counts
  are deterministic — no wall-clock flakiness in CI; the measured
  throughput factor is reported alongside.

Results are written as a machine-readable ``BENCH_invalidation.json``
artifact (merged into ``BENCH_summary.json`` by
``tools/bench_trend.py``).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_invalidation.py --profile small

or through pytest (the CI assertions)::

    python -m pytest benchmarks/bench_invalidation.py
"""

from __future__ import annotations

import argparse
import json
import os
import random
from pathlib import Path
from time import perf_counter

from repro import VIPTree
from repro.bench.reporting import Table
from repro.datasets import load_venue, random_objects
from repro.datasets.workloads import random_point
from repro.engine import QueryEngine

#: the paper's workhorse venue, as in bench_kernels
VENUE = "Men-2"
ASSERT_PROFILE = "small"
#: scoped must serve at least this factor of the full-flush hit count
MIN_FACTOR = float(os.environ.get("INVALIDATION_BENCH_MIN_FACTOR", "3.0"))

N_OBJECTS = 80
#: distinct query points; each round replays the whole pool, so every
#: entry has been cached by the previous round — what full-flush loses
POOL = 16
ROUNDS = 40
K = 5
RADIUS = 40.0
#: update:query mix — 1 leaf-local move per POOL queries would be 1:16;
#: two moves per round make it the ISSUE's 1:8
MOVES_PER_ROUND = 2


def build_events(space, objects_seed=47, seed=48):
    """The deterministic event stream both engines replay: per round,
    ``MOVES_PER_ROUND`` leaf-local moves (each object jitters inside its
    own partition, so source leaf == destination leaf) followed by the
    full query pool (alternating kNN / range)."""
    rng = random.Random(seed)
    pool = [random_point(space, rng) for _ in range(POOL)]
    events = []
    for rnd in range(ROUNDS):
        for _ in range(MOVES_PER_ROUND):
            events.append(("move", None))
        for i, q in enumerate(pool):
            if (rnd + i) % 2 == 0:
                events.append(("knn", q))
            else:
                events.append(("range", q))
    return events


def replay(engine: QueryEngine, events, seed=49):
    """Replay ``events`` on one engine; returns ``(answers, seconds)``.

    Moves are resolved per engine (each owns its object set) but with a
    shared rng seed, so both engines apply byte-identical op streams.
    """
    rng = random.Random(seed)
    movers = [o.object_id for o in engine.objects][: max(4, N_OBJECTS // 10)]
    space = engine.index.space
    answers = []
    t0 = perf_counter()
    for kind, q in events:
        if kind == "move":
            oid = movers[rng.randrange(len(movers))]
            pid = engine.objects[oid].location.partition_id
            engine.move_object(oid, random_point(space, rng, partitions=[pid]))
        elif kind == "knn":
            answers.append(engine.knn(q, K))
        else:
            answers.append(engine.range_query(q, RADIUS))
    return answers, perf_counter() - t0


def run_bench(profile: str, *, objects_seed=47, kernels="auto"):
    """Both invalidation modes on the 1:8 mix: list of result rows.

    Asserts element-wise answer identity between modes.
    """
    space = load_venue(VENUE, profile)
    tree = VIPTree.build(space)
    events = build_events(space, seed=objects_seed + 1)
    rows, answers = [], {}
    for mode in ("full", "scoped"):
        engine = QueryEngine(
            tree, objects=random_objects(space, N_OBJECTS, seed=objects_seed),
            kernels=kernels, invalidation=mode,
        )
        answers[mode], seconds = replay(engine, events)
        s = engine.stats()
        queries = s.knn_queries + s.range_queries
        rows.append({
            "venue": space.name,
            "profile": profile,
            "mode": mode,
            "queries": queries,
            "updates": s.updates,
            "hits": s.hits,
            "misses": s.misses,
            "hit_rate": s.hit_rate,
            "scoped_invalidations": s.scoped_invalidations,
            "full_invalidations": s.full_invalidations,
            "entries_dropped": s.invalidation_entries_dropped,
            "seconds": seconds,
            "events_per_s": len(events) / seconds,
        })
    assert answers["scoped"] == answers["full"], (
        f"scoped invalidation diverged from full-flush on {space.name} "
        f"({profile}) — scoping must never change answers"
    )
    full_row, scoped_row = rows
    # Laplace-smoothed: the full-flush baseline legitimately hits ~never
    # on this mix (every round flushes before the pool repeats)
    factor = (scoped_row["hits"] + 1) / (full_row["hits"] + 1)
    scoped_row["hit_factor_vs_full"] = factor
    scoped_row["throughput_factor_vs_full"] = (
        scoped_row["events_per_s"] / full_row["events_per_s"]
    )
    return rows


# ----------------------------------------------------------------------
# CI acceptance (pytest entry points)
# ----------------------------------------------------------------------
def test_scoped_invalidation_hit_factor_at_least_min():
    """Acceptance: on the leaf-local 1:8 moving-object mix (Men-2,
    small) scoped invalidation retains >= MIN_FACTOR x the result-cache
    hits of the full-flush baseline, answers identical."""
    rows = run_bench(ASSERT_PROFILE)
    full_row, scoped_row = rows
    factor = scoped_row["hit_factor_vs_full"]
    assert factor >= MIN_FACTOR, (
        f"scoped invalidation kept only {scoped_row['hits']} cached hits vs "
        f"full-flush {full_row['hits']} ({factor:.2f}x) on the 1:8 mix "
        f"({VENUE}, {ASSERT_PROFILE}; need >= {MIN_FACTOR}x)"
    )
    # the mechanism, not just the outcome: scoped events dropped only a
    # fraction of what the full-flush baseline threw away
    assert scoped_row["full_invalidations"] == 0
    assert scoped_row["entries_dropped"] < full_row["entries_dropped"]


def test_bench_mix_is_one_to_eight():
    """The event stream is the ISSUE's update:query 1:8 mix."""
    space = load_venue(VENUE, ASSERT_PROFILE)
    events = build_events(space)
    moves = sum(1 for kind, _ in events if kind == "move")
    queries = len(events) - moves
    assert queries == 8 * moves


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", default=ASSERT_PROFILE,
                        choices=("tiny", "small", "paper"))
    parser.add_argument("--kernels", default="auto",
                        choices=("auto", "python", "numpy"))
    parser.add_argument("--seed", type=int, default=47)
    parser.add_argument("--json", metavar="FILE",
                        default="BENCH_invalidation.json",
                        help="bench-history artifact path (default: "
                             "BENCH_invalidation.json; CI uploads it)")
    args = parser.parse_args(argv)

    rows = run_bench(args.profile, objects_seed=args.seed,
                     kernels=args.kernels)
    full_row, scoped_row = rows

    table = Table(
        title=f"Cache invalidation — {VENUE} ({args.profile}), leaf-local "
              f"moving objects, update:query 1:{8}",
        headers=["mode", "hits", "hit rate", "entries dropped", "events/s"],
        notes=f"{ROUNDS} rounds x ({MOVES_PER_ROUND} same-leaf moves + "
              f"{POOL} pool queries, k={K}, r={RADIUS:g}); answers asserted "
              "element-wise identical across modes",
    )
    for r in rows:
        table.add_row(
            r["mode"], str(r["hits"]), f"{r['hit_rate']:.1%}",
            str(r["entries_dropped"]), f"{r['events_per_s']:,.0f}",
        )
    print(table.render())
    print(f"\nhit factor (scoped vs full): "
          f"{scoped_row['hit_factor_vs_full']:.1f}x "
          f"(throughput {scoped_row['throughput_factor_vs_full']:.2f}x, "
          f"CI floor {MIN_FACTOR}x on hits)")

    if args.json:
        Path(args.json).write_text(json.dumps({
            "bench": "invalidation",
            "schema": 1,
            "venue": VENUE,
            "profile": args.profile,
            "seed": args.seed,
            "min_factor": MIN_FACTOR,
            "rows": rows,
        }, indent=2))
        print(f"json written to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
