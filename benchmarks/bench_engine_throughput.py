"""Engine throughput: cached batch engine vs uncached single queries.

Replays a 70/20/10 kNN/distance/range mixed workload (drawn from a
bounded pool of hot locations, as deployed services see) against a
VIP-Tree twice: once through an uncached engine issuing one query at a
time, once through a cache-enabled engine using the batch endpoints.
Reports queries/sec and the speedup per venue.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --profile tiny

or through pytest (asserts the cached batch engine is at least 2x the
uncached single-query throughput on the mall "tiny" venue)::

    python -m pytest benchmarks/bench_engine_throughput.py
"""

from __future__ import annotations

import argparse

from repro import VIPTree
from repro.bench.reporting import Table
from repro.datasets import load_venue, mixed_queries, random_objects
from repro.engine import QueryEngine, replay

#: the workload shape of the module docstring: kNN-heavy mixed traffic
MIX = {"knn": 0.7, "distance": 0.2, "range": 0.1}
DEFAULT_VENUES = ("MC", "Men", "CL")  # mall / office / campus families


def run_venue(
    venue: str = "MC",
    profile: str = "tiny",
    count: int = 400,
    pool: int = 40,
    n_objects: int = 24,
    k: int = 5,
    seed: int = 29,
):
    """Measure one venue; returns ``(uncached report, cached report)``."""
    space = load_venue(venue, profile)
    tree = VIPTree.build(space)
    objects = random_objects(space, n_objects)
    queries = mixed_queries(
        space, count, MIX, seed=seed, pool=pool, k=k, d2d=tree.d2d
    )

    uncached = QueryEngine(tree, objects, cache=False)
    res_u, rep_u = replay(uncached, queries, batched=False)

    cached = QueryEngine(tree, objects, cache=True)
    res_c, rep_c = replay(cached, queries, batched=True)

    # throughput must never come at the cost of correctness
    for a, b in zip(res_u, res_c):
        if isinstance(a, float):
            assert a == b
        elif hasattr(a, "doors"):
            assert a.distance == b.distance and a.doors == b.doors
        else:
            assert a == b
    return rep_u, rep_c


def test_cached_batch_engine_at_least_2x_uncached():
    """Acceptance: >= 2x on the mall "tiny" venue for the 70/20/10 mix."""
    rep_u, rep_c = run_venue("MC", "tiny")
    assert rep_c.qps >= 2 * rep_u.qps, (
        f"cached batch {rep_c.qps:,.0f} q/s < 2x uncached {rep_u.qps:,.0f} q/s"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--venues", nargs="+", default=list(DEFAULT_VENUES))
    parser.add_argument("--profile", default="tiny", choices=("tiny", "small", "paper"))
    parser.add_argument("--count", type=int, default=400, help="queries per venue")
    parser.add_argument("--pool", type=int, default=40, help="distinct hot locations")
    parser.add_argument("--objects", type=int, default=24)
    parser.add_argument("--seed", type=int, default=29)
    args = parser.parse_args(argv)

    table = Table(
        title=f"Engine throughput — {args.count} queries, 70/20/10 kNN/distance/range, "
        f"pool={args.pool}, profile={args.profile}",
        headers=["venue", "uncached q/s", "cached batch q/s", "speedup", "hit rate"],
        notes="cached batch vs uncached single-query replay of the same stream",
    )
    for venue in args.venues:
        rep_u, rep_c = run_venue(
            venue,
            args.profile,
            count=args.count,
            pool=args.pool,
            n_objects=args.objects,
            seed=args.seed,
        )
        table.add_row(
            venue,
            rep_u.qps,
            rep_c.qps,
            f"{rep_c.qps / rep_u.qps:.2f}x",
            f"{rep_c.stats.hit_rate:.0%}" if rep_c.stats else "-",
        )
    print(table.render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
