"""Shared fixtures for the pytest-benchmark suites.

Benchmarks run on the ``tiny`` profile by default so the whole suite
finishes in minutes under pure Python; set ``REPRO_BENCH_PROFILE=small``
(or ``paper``) for larger runs. The full paper-style sweeps live in
``python -m repro.bench`` — these suites benchmark the same operations
per table/figure with pytest-benchmark statistics.

Shared constants live in :mod:`bench_common`; this file only defines
fixtures (see the note there about conftest name collisions).
"""

from __future__ import annotations

import pytest

from bench_common import BENCH_VENUES, PROFILE

from repro.bench.harness import VenueContext


@pytest.fixture(scope="session")
def contexts() -> dict[str, VenueContext]:
    return {name: VenueContext(name, PROFILE) for name in BENCH_VENUES}


@pytest.fixture(scope="session", params=BENCH_VENUES)
def ctx(request, contexts) -> VenueContext:
    return contexts[request.param]
