"""Shared fixtures for the pytest-benchmark suites.

Benchmarks run on the ``tiny`` profile by default so the whole suite
finishes in minutes under pure Python; set ``REPRO_BENCH_PROFILE=small``
(or ``paper``) for larger runs. The full paper-style sweeps live in
``python -m repro.bench`` — these suites benchmark the same operations
per table/figure with pytest-benchmark statistics.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import VenueContext

PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "tiny")

#: venue each figure benchmarks by default (the paper's workhorse is
#: Men-2; every suite also covers MC for a second size point)
BENCH_VENUES = ("MC", "Men-2")


@pytest.fixture(scope="session")
def contexts() -> dict[str, VenueContext]:
    return {name: VenueContext(name, PROFILE) for name in BENCH_VENUES}


@pytest.fixture(scope="session", params=BENCH_VENUES)
def ctx(request, contexts) -> VenueContext:
    return contexts[request.param]
