"""Object updates: incremental maintenance vs full index rebuild.

The paper attaches objects to tree leaves so that insertion/deletion/
movement is cheap (§3.4). This benchmark quantifies that claim for the
reproduction: a stream of random-walk ``move`` ops (plus insert/delete
churn) is applied to a VIP-Tree's :class:`ObjectIndex` twice —

* **incremental** — through ``QueryEngine.update`` (bisect into the
  leaf access lists, bubble subtree-count deltas up the chain),
* **rebuild** — mutating the object set and reconstructing the whole
  ``ObjectIndex`` from scratch after every op (the only option before
  the index became dynamic),

and reports update ops/sec for both, their speedup, and the query
throughput of a mixed moving-object workload replayed at several
update:query ratios. After every measured stream the engine's kNN and
range answers are checked against the Dijkstra oracle.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_object_updates.py --profile tiny

or through pytest (asserts incremental is at least 5x rebuild
throughput on the mall and campus "tiny" venues and that post-update
answers match the oracle)::

    python -m pytest benchmarks/bench_object_updates.py
"""

from __future__ import annotations

import argparse
import time

from repro import ObjectIndex, VIPTree
from repro.baselines import DijkstraOracle
from repro.bench.reporting import Table
from repro.datasets import load_venue, mixed_queries, moving_objects, random_objects
from repro.engine import QueryEngine, replay

#: update:query ratios for the mixed replay column (updates per query)
RATIOS = (0.25, 1.0, 4.0)


def _check_against_oracle(engine: QueryEngine, oracle: DijkstraOracle, space, seed: int = 77) -> None:
    """Post-update answers must match ground truth exactly."""
    queries = mixed_queries(space, 12, {"knn": 0.5, "range": 0.5}, seed=seed, pool=6, k=5, radius=45.0)
    for q in queries:
        if q.kind == "knn":
            got = [(round(n.distance, 8), n.object_id) for n in engine.knn(q.source, q.k)]
            want = [(round(d, 8), oid) for d, oid in oracle.knn(q.source, engine.objects, q.k)]
        else:
            got = [(round(n.distance, 8), n.object_id) for n in engine.range_query(q.source, q.radius)]
            want = [(round(d, 8), oid) for d, oid in oracle.range_query(q.source, engine.objects, q.radius)]
        assert got == want, f"post-update {q.kind} diverged from oracle: {got} != {want}"


def measure_update_throughput(venue: str = "MC", profile: str = "tiny",
                              n_objects: int = 50, n_updates: int = 200,
                              churn: float = 0.2, seed: int = 13):
    """ops/sec for incremental vs rebuild application of one op stream.

    Returns ``(incremental_ops_per_sec, rebuild_ops_per_sec)``.
    """
    space = load_venue(venue, profile)
    tree = VIPTree.build(space)
    oracle = DijkstraOracle(space, tree.d2d)

    # Two identical object sets: the stream is deterministic given the
    # initial set, so both executions see the same ops.
    objects_inc = random_objects(space, n_objects, seed=seed)
    objects_rb = random_objects(space, n_objects, seed=seed)
    ops = moving_objects(space, objects_inc, n_updates,
                         update_ratio=float("inf"), churn=churn, seed=seed)

    engine = QueryEngine(tree, objects_inc)
    start = time.perf_counter()
    for op in ops:
        engine.update(op)
    inc_seconds = time.perf_counter() - start
    _check_against_oracle(engine, oracle, space)

    start = time.perf_counter()
    index = ObjectIndex(tree, objects_rb)
    for op in ops:
        objects_rb.apply(op)
        index = ObjectIndex(tree, objects_rb)
    rb_seconds = time.perf_counter() - start
    # both executions must land on the identical index state
    assert index.node_counts == engine.object_index.node_counts
    assert index.access_lists == engine.object_index.access_lists

    return len(ops) / max(inc_seconds, 1e-9), len(ops) / max(rb_seconds, 1e-9)


def measure_mixed_replay(venue: str, profile: str, update_ratio: float,
                         count: int = 400, n_objects: int = 50, seed: int = 13) -> float:
    """Query throughput (q/s) of a mixed moving-object stream."""
    space = load_venue(venue, profile)
    tree = VIPTree.build(space)
    objects = random_objects(space, n_objects, seed=seed)
    stream = moving_objects(space, objects, count, update_ratio=update_ratio,
                            churn=0.1, seed=seed, d2d=tree.d2d)
    engine = QueryEngine(tree, objects)
    _, report = replay(engine, stream)
    _check_against_oracle(engine, DijkstraOracle(space, tree.d2d), space)
    return report.qps


def test_incremental_updates_at_least_5x_rebuild():
    """Acceptance: >= 5x on the mall and campus "tiny" venues, answers
    matching the Dijkstra oracle after the update stream."""
    for venue in ("MC", "CL"):
        inc, rb = measure_update_throughput(venue, "tiny")
        assert inc >= 5 * rb, (
            f"{venue}: incremental {inc:,.0f} ops/s < 5x rebuild {rb:,.0f} ops/s"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--venues", nargs="+", default=["MC", "CL"])
    parser.add_argument("--profile", default="tiny", choices=("tiny", "small", "paper"))
    parser.add_argument("--objects", type=int, default=50)
    parser.add_argument("--updates", type=int, default=200, help="ops in the update stream")
    parser.add_argument("--count", type=int, default=400, help="events per mixed replay")
    parser.add_argument("--churn", type=float, default=0.2)
    parser.add_argument("--seed", type=int, default=13)
    args = parser.parse_args(argv)

    table = Table(
        title=f"Object updates — {args.updates} ops ({args.churn:.0%} churn), "
        f"{args.objects} objects, profile={args.profile}",
        headers=["venue", "incremental ops/s", "rebuild ops/s", "speedup"]
        + [f"q/s @ {r}:1" for r in RATIOS],
        notes="q/s columns: mixed replay at update:query ratio r, incremental engine",
    )
    for venue in args.venues:
        inc, rb = measure_update_throughput(
            venue, args.profile, n_objects=args.objects,
            n_updates=args.updates, churn=args.churn, seed=args.seed,
        )
        qps = [
            measure_mixed_replay(venue, args.profile, r, count=args.count,
                                 n_objects=args.objects, seed=args.seed)
            for r in RATIOS
        ]
        table.add_row(venue, inc, rb, f"{inc / rb:.1f}x", *qps)
    print(table.render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
