"""Shared configuration for the pytest-benchmark suites.

Kept out of ``conftest.py`` so benchmark modules can import it by a
unique module name — ``from conftest import ...`` resolves whichever
``conftest.py`` pytest imported first and silently collides with
``tests/conftest.py`` when both suites are collected together.
"""

from __future__ import annotations

import os

PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "tiny")

#: venue each figure benchmarks by default (the paper's workhorse is
#: Men-2; every suite also covers MC for a second size point)
BENCH_VENUES = ("MC", "Men-2")
