"""Snapshot store: round-trips, integrity refusals, catalog, CLI, engine
warm start, and the ObjectSet capacity/tombstone/version regression."""

import json
from pathlib import Path

import pytest

from repro import IndoorPoint, ObjectIndex, UpdateOp, VIPTree, make_object_set
from repro.baselines import DijkstraOracle
from repro.datasets import build_mall, load_venue, random_objects
from repro.engine import QueryEngine
from repro.exceptions import SnapshotError
from repro.model.io_json import canonical_dumps, objects_from_dict, objects_to_dict
from repro.storage import (
    SnapshotCatalog,
    build_index,
    known_kinds,
    load_snapshot,
    read_snapshot_info,
    save_snapshot,
    venue_fingerprint,
    verify_snapshot,
)
from repro.storage.__main__ import main as storage_cli
from repro.testing import sample_points


# ----------------------------------------------------------------------
# Round-trips
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_viptree_round_trip_identical_answers(self, fig1_space, fig1_viptree,
                                                  fig1_objects, tmp_path):
        index = ObjectIndex(fig1_viptree, fig1_objects)
        path = tmp_path / "fig1.snap"
        save_snapshot(path, fig1_viptree, index)
        snap = load_snapshot(path)  # standalone: venue restored from the file
        pts = sample_points(fig1_space, 8)
        restored_pts = [IndoorPoint(p.partition_id, p.x, p.y) for p in pts]
        for (a, b), (ra, rb) in zip(
            zip(pts[:4], pts[4:]), zip(restored_pts[:4], restored_pts[4:])
        ):
            assert fig1_viptree.shortest_distance(a, b) == snap.index.shortest_distance(ra, rb)
            p1 = fig1_viptree.shortest_path(a, b)
            p2 = snap.index.shortest_path(ra, rb)
            assert (p1.distance, p1.doors) == (p2.distance, p2.doors)
        got = snap.index.knn(snap.object_index, restored_pts[0], 4)
        want = fig1_viptree.knn(index, pts[0], 4)
        assert [(n.distance, n.object_id) for n in got] == [
            (n.distance, n.object_id) for n in want
        ]

    @pytest.mark.parametrize("kind", known_kinds())
    def test_every_kind_round_trips(self, mall_space, tmp_path, kind):
        index = build_index(kind, mall_space)
        objects = random_objects(mall_space, 8, seed=3)
        path = tmp_path / "idx.snap"
        info = save_snapshot(path, index, objects)
        assert info.kind == kind and info.num_objects == 8
        snap = load_snapshot(path, space=mall_space)
        oracle = DijkstraOracle(mall_space)
        pts = sample_points(mall_space, 6, seed=9)
        for a, b in zip(pts[:3], pts[3:]):
            assert abs(
                snap.index.shortest_distance(a, b) - oracle.shortest_distance(a, b)
            ) < 1e-8

    def test_tree_structure_identical(self, tower_space, tower_viptree, tmp_path):
        path = tmp_path / "tower.snap"
        save_snapshot(path, tower_viptree)
        snap = load_snapshot(path, space=tower_space)
        tree = snap.index
        assert len(tree.nodes) == len(tower_viptree.nodes)
        assert tree.root_id == tower_viptree.root_id
        assert tree.vip_store == tower_viptree.vip_store
        assert tree.superior_doors == tower_viptree.superior_doors
        assert tree.leaf_nodes_of_door == tower_viptree.leaf_nodes_of_door
        assert sorted(tree.d2d.edges()) == sorted(tower_viptree.d2d.edges())
        for a, b in zip(tree.nodes, tower_viptree.nodes):
            assert (a.level, a.parent, a.children, a.partitions, a.access_doors) == (
                b.level, b.parent, b.children, b.partitions, b.access_doors
            )
            if b.table is not None:
                assert a.table.row_doors == b.table.row_doors
                assert a.table.col_doors == b.table.col_doors
                for r in b.table.row_doors:
                    for c in b.table.col_doors:
                        assert a.table.distance(r, c) == b.table.distance(r, c)
                        assert a.table.next_hop(r, c) == b.table.next_hop(r, c)

    def test_object_index_round_trip_structurally_identical(self, fig1_viptree,
                                                            fig1_space, tmp_path):
        objects = random_objects(fig1_space, 12, seed=5)
        index = ObjectIndex(fig1_viptree, objects)
        path = tmp_path / "oi.snap"
        save_snapshot(path, fig1_viptree, index)
        snap = load_snapshot(path, space=fig1_space)
        restored = snap.object_index
        assert restored.leaf_objects == index.leaf_objects
        assert restored.access_lists == index.access_lists
        assert restored.node_counts == index.node_counts
        assert restored._entries == index._entries
        assert restored.updates == index.updates
        # ... and identical to a from-scratch rebuild over the loaded set
        rebuilt = ObjectIndex(snap.index, snap.objects)
        assert restored.access_lists == rebuilt.access_lists
        assert restored.node_counts == rebuilt.node_counts

    def test_snapshot_hashes_deterministic_across_builds(self, tmp_path):
        """Two independent builds of the same venue must produce the
        same fingerprint and payload hash (wall-clock build time is the
        only header field allowed to differ)."""
        infos, payloads = [], []
        for i in range(2):
            space = build_mall("tiny", name="MC-tiny")
            tree = VIPTree.build(space)
            index = ObjectIndex(tree, random_objects(space, 10, seed=7))
            p = tmp_path / f"b{i}.snap"
            infos.append(save_snapshot(p, tree, index))
            payloads.append(p.read_bytes().partition(b"\n")[2])
        assert payloads[0] == payloads[1]
        a, b = infos
        assert a.fingerprint == b.fingerprint
        assert a.payload_sha256 == b.payload_sha256
        assert a.payload_bytes == b.payload_bytes

    @pytest.mark.parametrize("kind", ["distmx", "distaw++", "gtree", "road"])
    def test_baseline_hashes_deterministic_across_builds(self, mall_space,
                                                         tmp_path, kind):
        """Every registered codec keeps wall-clock build time out of the
        hashed payload (DistAw++ nests a matrix — regression)."""
        hashes = []
        for i in range(2):
            p = tmp_path / f"{i}.snap"
            hashes.append(save_snapshot(p, build_index(kind, mall_space)).payload_sha256)
        assert hashes[0] == hashes[1]

    def test_repeated_save_of_same_index_byte_identical(self, mall_space, tmp_path):
        tree = VIPTree.build(mall_space)
        p1, p2 = tmp_path / "a.snap", tmp_path / "b.snap"
        save_snapshot(p1, tree)
        save_snapshot(p2, tree)
        assert p1.read_bytes() == p2.read_bytes()

    def test_rejects_unregistered_index_class(self, mall_space, tmp_path):
        class NotAnIndex:
            index_name = "VIP-Tree"  # even a spoofed name must not pass
            space = mall_space

        with pytest.raises(SnapshotError, match="no snapshot codec"):
            save_snapshot(tmp_path / "x.snap", NotAnIndex())


# ----------------------------------------------------------------------
# Integrity refusals
# ----------------------------------------------------------------------
@pytest.fixture()
def saved_snapshot(mall_space, tmp_path):
    tree = VIPTree.build(mall_space)
    index = ObjectIndex(tree, random_objects(mall_space, 6, seed=1))
    path = tmp_path / "mall.snap"
    save_snapshot(path, tree, index)
    return path


class TestRefusals:
    def test_refuses_bad_magic(self, tmp_path):
        path = tmp_path / "junk.snap"
        path.write_bytes(b'{"magic": "something-else"}\n{}')
        with pytest.raises(SnapshotError, match="bad magic"):
            load_snapshot(path)
        path.write_bytes(b"not json at all\npayload")
        with pytest.raises(SnapshotError, match="not a snapshot file"):
            read_snapshot_info(path)

    def test_refuses_future_format_version(self, saved_snapshot):
        head, _, payload = saved_snapshot.read_bytes().partition(b"\n")
        header = json.loads(head)
        header["format"] = 999
        saved_snapshot.write_bytes(
            canonical_dumps(header).encode() + b"\n" + payload
        )
        with pytest.raises(SnapshotError, match="unsupported snapshot format"):
            load_snapshot(saved_snapshot)

    def test_refuses_header_with_missing_fields(self, saved_snapshot):
        """Valid magic + format but absent fields must raise
        SnapshotError (never KeyError) through every entry point."""
        _, _, payload = saved_snapshot.read_bytes().partition(b"\n")
        stub = {"magic": "repro-index-snapshot", "format": 1}
        saved_snapshot.write_bytes(canonical_dumps(stub).encode() + b"\n" + payload)
        with pytest.raises(SnapshotError, match="missing fields"):
            read_snapshot_info(saved_snapshot)
        with pytest.raises(SnapshotError, match="missing fields"):
            load_snapshot(saved_snapshot)
        # catalog listings skip it instead of crashing
        catalog = SnapshotCatalog(saved_snapshot.parent)
        assert catalog.entries() == []

    def test_refuses_truncated_payload(self, saved_snapshot):
        raw = saved_snapshot.read_bytes()
        saved_snapshot.write_bytes(raw[:-40])
        with pytest.raises(SnapshotError, match="truncated or corrupted"):
            load_snapshot(saved_snapshot)

    def test_refuses_corrupted_payload(self, saved_snapshot):
        raw = bytearray(saved_snapshot.read_bytes())
        raw[-10] ^= 0xFF
        saved_snapshot.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError, match="hash mismatch"):
            verify_snapshot(saved_snapshot)

    def test_refuses_wrong_venue(self, saved_snapshot, campus_space):
        with pytest.raises(SnapshotError, match="fingerprint mismatch"):
            load_snapshot(saved_snapshot, space=campus_space)

    def test_shallow_verify_and_info(self, saved_snapshot, mall_space):
        info = verify_snapshot(saved_snapshot)
        assert info.kind == "VIP-Tree"
        assert info.venue == mall_space.name
        assert info.fingerprint == venue_fingerprint(mall_space)
        assert info.num_objects == 6 and info.has_object_index
        assert read_snapshot_info(saved_snapshot) == info

    def test_deep_verify_catches_consistent_corruption(self, saved_snapshot):
        """A tampered payload with a *recomputed* hash passes the shallow
        check; the deep oracle cross-check still refuses it."""
        import hashlib

        raw = saved_snapshot.read_bytes()
        head, _, rest = raw.partition(b"\n")
        header = json.loads(head)
        body = json.loads(rest[: header["payload_bytes"]])
        # last pair is the root (largest nid): silently wrong subtree count
        body["object_index"]["node_counts"][-1][1] += 5
        new_payload = canonical_dumps(body).encode()
        header["payload_sha256"] = hashlib.sha256(new_payload).hexdigest()
        header["payload_bytes"] = len(new_payload)
        prefix = canonical_dumps(header).encode() + b"\n" + new_payload
        if header.get("binary_bytes"):
            # keep the (untampered) binary section, re-padded to 8 bytes
            prefix += b"\x00" * ((-len(prefix)) % 8)
            prefix += raw[len(raw) - header["binary_bytes"] :]
        saved_snapshot.write_bytes(prefix)
        verify_snapshot(saved_snapshot)  # shallow: hash is "right"
        with pytest.raises(SnapshotError, match="subtree counts"):
            verify_snapshot(saved_snapshot, deep=True)


# ----------------------------------------------------------------------
# ObjectSet persistence regression (capacity, tombstones, version)
# ----------------------------------------------------------------------
class TestObjectSetPersistence:
    def test_capacity_tombstones_and_version_survive_snapshot(self, fig1_space,
                                                              fig1_viptree, tmp_path):
        objects = random_objects(fig1_space, 6, seed=2)
        engine = QueryEngine(fig1_viptree, ObjectIndex(fig1_viptree, objects))
        engine.delete_object(2)
        engine.delete_object(5)  # trailing id: only `capacity` preserves it
        path = tmp_path / "tomb.snap"
        engine.save_snapshot(path)
        loaded = QueryEngine.from_snapshot(path, space=fig1_space)
        assert loaded.objects.capacity == 6
        assert loaded.objects.version == objects.version
        assert loaded.objects.live_ids() == [0, 1, 3, 4]
        assert loaded.objects.get(2) is None and loaded.objects.get(5) is None
        # a post-load insert must take a fresh id, not resurrect id 5
        new_id = loaded.insert_object(objects[0].location)
        assert new_id == 6

    def test_io_json_objects_version_round_trip(self, fig1_space):
        rooms = fig1_space.fixture_rooms
        objects = make_object_set(
            fig1_space, [IndoorPoint(rooms[0][0], 2.0, 1.5)]
        )
        objects.insert(IndoorPoint(rooms[0][1], 5.0, 1.5))
        objects.delete(0)
        clone = objects_from_dict(objects_to_dict(objects))
        assert clone.version == objects.version == 2
        assert clone.capacity == objects.capacity
        assert clone.live_ids() == objects.live_ids()


# ----------------------------------------------------------------------
# Catalog
# ----------------------------------------------------------------------
class TestCatalog:
    def test_save_load_has(self, mall_space, campus_space, tmp_path):
        catalog = SnapshotCatalog(tmp_path / "cat")
        mall_tree = VIPTree.build(mall_space)
        campus_tree = VIPTree.build(campus_space)
        p1 = Path(catalog.save(mall_tree).path)
        p2 = Path(catalog.save(campus_tree).path)
        assert p1 != p2 and p1.is_file() and p2.is_file()
        # atomic publish leaves no temp files behind
        assert not list((tmp_path / "cat").rglob("*.tmp"))
        assert catalog.has(mall_space, "viptree")
        assert not catalog.has(mall_space, "distmx")
        snap = catalog.load(mall_space, "VIP-Tree")
        assert snap.info.venue == mall_space.name
        with pytest.raises(SnapshotError, match="no DistMx snapshot"):
            catalog.load(mall_space, "distmx")

    def test_same_name_different_geometry_no_collision(self, tmp_path):
        a = build_mall("tiny", seed=1, name="MC")
        b = build_mall("tiny", seed=2, name="MC")
        catalog = SnapshotCatalog(tmp_path / "cat")
        catalog.save(VIPTree.build(a))
        assert not catalog.has(b, "viptree")  # keyed by fingerprint, not name
        catalog.save(VIPTree.build(b))
        assert catalog.has(a, "viptree") and catalog.has(b, "viptree")
        assert len(catalog.entries()) == 2

    def test_distaw_variants_get_distinct_slots(self, mall_space, tmp_path):
        """DistAw and DistAw++ must not collide on one file, and a slot
        must only ever serve the kind it was saved as."""
        from repro.baselines import DistAware, DistAwPlusPlus

        catalog = SnapshotCatalog(tmp_path / "cat")
        assert catalog.path_for(mall_space, "distaw") != catalog.path_for(
            mall_space, "distaw++"
        )
        catalog.save(DistAwPlusPlus(mall_space))
        assert not catalog.has(mall_space, "distaw")
        catalog.save(DistAware(mall_space))
        assert catalog.load(mall_space, "distaw").info.kind == "DistAw"
        assert catalog.load(mall_space, "distaw++").info.kind == "DistAw++"

    def test_entries_skips_foreign_files(self, mall_space, tmp_path):
        catalog = SnapshotCatalog(tmp_path / "cat")
        catalog.save(VIPTree.build(mall_space))
        (tmp_path / "cat" / "stray.snap").write_bytes(b"not a snapshot\n")
        entries = catalog.entries()
        assert [e.kind for e in entries] == ["VIP-Tree"]

    def test_engine_for_accepts_object_index_on_cold_path(self, mall_space, tmp_path):
        """An ObjectIndex built on some previous tree must be re-embedded
        into the freshly built index, not crash the identity check."""
        old_tree = VIPTree.build(mall_space)
        objects = random_objects(mall_space, 7, seed=15)
        old_index = ObjectIndex(old_tree, objects)
        catalog = SnapshotCatalog(tmp_path / "cat")
        engine = catalog.engine_for(mall_space, objects=old_index)
        assert len(engine.objects) == 7
        q = sample_points(mall_space, 1, seed=3)[0]
        oracle = DijkstraOracle(mall_space)
        got = [(round(n.distance, 8), n.object_id) for n in engine.knn(q, 3)]
        assert got == [(round(d, 8), o) for d, o in oracle.knn(q, objects, 3)]
        # the snapshot it saved carries the full embedding
        assert catalog.load(mall_space, "viptree").object_index is not None

    def test_load_or_build_then_engine_for(self, mall_space, tmp_path):
        catalog = SnapshotCatalog(tmp_path / "cat")
        objects = random_objects(mall_space, 5, seed=4)
        snap, loaded = catalog.load_or_build(mall_space, "viptree", objects=objects)
        assert not loaded  # cold build + save
        snap2, loaded2 = catalog.load_or_build(mall_space, "viptree")
        assert loaded2  # warm start
        engine = catalog.engine_for(mall_space)
        pts = sample_points(mall_space, 2, seed=11)
        oracle = DijkstraOracle(mall_space)
        assert abs(
            engine.distance(pts[0], pts[1]) - oracle.shortest_distance(pts[0], pts[1])
        ) < 1e-8
        assert [n.object_id for n in engine.knn(pts[0], 3)] == [
            oid for _, oid in oracle.knn(pts[0], snap2.objects, 3)
        ]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCLI:
    def test_build_ls_verify_load(self, tmp_path, capsys):
        catalog = str(tmp_path / "cat")
        assert storage_cli(["build", "--venue", "MC", "--profile", "tiny",
                            "--objects", "5", "--catalog", catalog]) == 0
        assert storage_cli(["ls", "--catalog", catalog]) == 0
        out = capsys.readouterr().out
        assert "VIP-Tree" in out and "MC" in out
        assert storage_cli(["verify", "--catalog", catalog, "--deep"]) == 0
        snap_file = next(Path(catalog).rglob("*.snap"))
        assert storage_cli(["load", str(snap_file),
                            "--venue", "MC", "--profile", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "ready to query" in out

    def test_build_to_file_and_verify_failure(self, tmp_path, capsys):
        out_file = tmp_path / "mc.snap"
        assert storage_cli(["build", "--venue", "MC", "--profile", "tiny",
                            "--index", "iptree", "--out", str(out_file)]) == 0
        assert storage_cli(["verify", str(out_file)]) == 0
        raw = bytearray(out_file.read_bytes())
        raw[-5] ^= 0xFF
        out_file.write_bytes(bytes(raw))
        assert storage_cli(["verify", str(out_file)]) == 1
        err = capsys.readouterr().err
        assert "hash mismatch" in err

    def test_verify_catalog_reports_corrupted_headers(self, tmp_path, capsys):
        """A snapshot whose header is destroyed must FAIL catalog verify,
        not be silently skipped (the CI integrity gate relies on this)."""
        catalog = str(tmp_path / "cat")
        storage_cli(["build", "--venue", "MC", "--profile", "tiny",
                     "--catalog", catalog])
        snap_file = next(Path(catalog).rglob("*.snap"))
        snap_file.write_bytes(b"garbage header\npayload")
        assert storage_cli(["verify", "--catalog", catalog]) == 1
        assert "FAIL" in capsys.readouterr().err
        # an empty catalog is an error too, not a silent pass
        assert storage_cli(["verify", "--catalog", str(tmp_path / "empty")]) == 2

    def test_build_skip_existing(self, tmp_path, capsys):
        catalog = str(tmp_path / "cat")
        args = ["build", "--venue", "MC", "--profile", "tiny", "--catalog", catalog]
        assert storage_cli(args) == 0
        snap_file = next(Path(catalog).rglob("*.snap"))
        before = snap_file.stat().st_mtime_ns
        assert storage_cli(args + ["--skip-existing"]) == 0
        assert "kept existing" in capsys.readouterr().out
        assert snap_file.stat().st_mtime_ns == before

    def test_load_refuses_wrong_venue(self, tmp_path, capsys):
        out_file = tmp_path / "mc.snap"
        storage_cli(["build", "--venue", "MC", "--profile", "tiny",
                     "--out", str(out_file)])
        assert storage_cli(["load", str(out_file),
                            "--venue", "CL", "--profile", "tiny"]) == 1
        assert "fingerprint mismatch" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Engine warm start
# ----------------------------------------------------------------------
class TestEngineWarmStart:
    def test_loaded_engine_serves_updates_and_queries(self, mall_space, tmp_path):
        tree = VIPTree.build(mall_space)
        objects = random_objects(mall_space, 10, seed=6)
        fresh = QueryEngine(tree, ObjectIndex(tree, objects))
        path = tmp_path / "mall.snap"
        fresh.save_snapshot(path)
        loaded = QueryEngine.from_snapshot(path, space=mall_space)
        assert loaded.stats().queries == 0 and loaded.stats().updates == 0

        pts = sample_points(mall_space, 4, seed=8)
        ops = [
            UpdateOp("insert", location=pts[0], label="new"),
            UpdateOp("move", object_id=3, location=pts[1]),
            UpdateOp("delete", object_id=1),
        ]
        assert fresh.batch_update(ops) == loaded.batch_update(ops)
        for q in pts:
            assert [(n.distance, n.object_id) for n in fresh.knn(q, 5)] == [
                (n.distance, n.object_id) for n in loaded.knn(q, 5)
            ]
            assert fresh.distance(q, pts[0]) == loaded.distance(q, pts[0])
        oracle = DijkstraOracle(mall_space, tree.d2d)
        got = [(round(n.distance, 8), n.object_id) for n in loaded.knn(pts[2], 4)]
        want = [(round(d, 8), oid) for d, oid in oracle.knn(pts[2], loaded.objects, 4)]
        assert got == want

    def test_baseline_engine_snapshot(self, mall_space, tmp_path):
        from repro.baselines import DistanceMatrix

        mx = DistanceMatrix(mall_space)
        objects = random_objects(mall_space, 6, seed=10)
        engine = QueryEngine(mx, objects)
        path = tmp_path / "mx.snap"
        info = engine.save_snapshot(path)
        assert info.kind == "DistMx" and not info.has_object_index
        loaded = QueryEngine.from_snapshot(path, space=mall_space)
        pts = sample_points(mall_space, 4, seed=12)
        for a, b in zip(pts[:2], pts[2:]):
            assert engine.distance(a, b) == loaded.distance(a, b)
        assert [(n.distance, n.object_id) for n in engine.knn(pts[0], 3)] == [
            (n.distance, n.object_id) for n in loaded.knn(pts[0], 3)
        ]


class TestConcurrentSaves:
    def test_racing_writers_never_publish_a_partial_file(
            self, mall_space, tmp_path):
        """Replicated shards cold-build one venue from separate
        processes and save concurrently. A shared temp-file name let
        one writer publish another's half-written (even empty) file;
        unique per-writer temp names make every published snapshot a
        complete one. Hammer the save path from racing threads while a
        reader loads in a loop — nothing may ever raise."""
        import threading
        import time

        tree = VIPTree.build(mall_space)
        objects = random_objects(mall_space, 8, seed=3)
        path = tmp_path / "venue.snap"
        save_snapshot(path, tree, objects)

        stop = threading.Event()
        errors: list[Exception] = []

        def writer():
            while not stop.is_set():
                try:
                    save_snapshot(path, tree, objects)
                except Exception as exc:  # noqa: BLE001 - the regression
                    errors.append(exc)
                    return

        def reader():
            while not stop.is_set():
                try:
                    load_snapshot(path, space=mall_space)
                except Exception as exc:  # noqa: BLE001 - the regression
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=writer) for _ in range(2)]
        threads.append(threading.Thread(target=reader))
        for t in threads:
            t.start()
        time.sleep(0.4)
        stop.set()
        for t in threads:
            t.join()
        assert not errors, f"concurrent save/load raised: {errors[:3]}"
        assert not list(tmp_path.glob("*.tmp*")), "stray temp files left"
