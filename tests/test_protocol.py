"""The serving wire protocol: codecs, framing, and error transport.

Pure protocol-layer tests — no worker processes. Covers the edge cases
the sharded cluster depends on: bit-exact value round-trips (floats
cross the wire through packed base64, not JSON decimals), oversized
and truncated frames, malformed documents, unknown request/result
kinds, exception reconstruction on the client side, the batch
envelope's ordering/isolation contract, and an adversarial fuzz pass
(hypothesis-mangled length prefixes, frames truncated at arbitrary
byte offsets, garbage spliced between valid frames) asserting the
reader always answers ``ProtocolError``/EOF — it never hangs.
"""

from __future__ import annotations

import math
import socket
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.results import Neighbor, PathResult, QueryStats
from repro.exceptions import OverloadedError, ProtocolError, QueryError, ServingError
from repro.model.entities import IndoorPoint
from repro.model.objects import UpdateOp
from repro.serving.protocol import (
    CONTROL_KINDS,
    MAX_BATCH_REQUESTS,
    MAX_FRAME_BYTES,
    QUERY_KINDS,
    REQUEST_KINDS,
    BatchRequest,
    BatchResponse,
    ErrorResponse,
    Request,
    Response,
    batch_reply_from_doc,
    batch_reply_to_doc,
    batch_request_from_doc,
    batch_request_to_doc,
    decode_frame,
    encode_frame,
    error_reply,
    is_batch_doc,
    recv_doc,
    reply_from_doc,
    reply_to_doc,
    request_from_doc,
    request_to_doc,
    result_from_doc,
    result_to_doc,
    send_doc,
)

#: floats with no short decimal representation — the wire must carry
#: them bit-for-bit, not through repr/parse round-trips
AWKWARD = (0.1 + 0.2, math.pi, 1e-309, 2.0**52 + 0.5)


# ----------------------------------------------------------------------
# Request codec
# ----------------------------------------------------------------------
def _points():
    return IndoorPoint(3, 1.25, -7.5), IndoorPoint(9, 0.1 + 0.2, 4.0)


@pytest.mark.parametrize("kind", QUERY_KINDS)
def test_request_round_trips_every_query_kind(kind):
    source, target = _points()
    request = Request(
        venue="a" * 64, kind=kind, source=source,
        target=target if kind in ("distance", "path") else None,
        k=7 if kind == "knn" else 0,
        radius=12.5 if kind == "range" else 0.0,
        op=UpdateOp(kind="move", object_id=4, location=source)
        if kind == "update" else None,
    )
    decoded, request_id = request_from_doc(request_to_doc(request, 123))
    assert request_id == 123
    assert decoded == request


@pytest.mark.parametrize("op_kind", ("insert", "delete", "move"))
def test_update_ops_round_trip(op_kind):
    source, _ = _points()
    op = UpdateOp(kind=op_kind, object_id=11, location=source,
                  label="cart-11", category="cart")
    request = Request(venue="v", kind="update", op=op)
    decoded, _ = request_from_doc(request_to_doc(request, 0))
    assert decoded.op == op


@pytest.mark.parametrize("kind", CONTROL_KINDS)
def test_control_requests_round_trip_payload(kind):
    request = Request(venue="", kind=kind, payload={"x": [1, 2], "y": "z"})
    decoded, _ = request_from_doc(request_to_doc(request, 5))
    assert decoded == request
    assert kind in REQUEST_KINDS


def test_malformed_request_document_raises():
    doc = request_to_doc(Request(venue="v", kind="distance"), 1)
    del doc["venue"]
    with pytest.raises(ProtocolError, match="malformed request"):
        request_from_doc(doc)
    with pytest.raises(ProtocolError):
        request_from_doc({"id": 1, "venue": "v", "kind": "knn",
                          "source": [1]})  # truncated point triple


# ----------------------------------------------------------------------
# Result codec
# ----------------------------------------------------------------------
@pytest.mark.parametrize("value", [
    None, True, False, 3, -1, "venue-id", {"nested": {"doc": [1, 2]}},
])
def test_plain_results_round_trip(value):
    assert result_from_doc(result_to_doc(value)) == value
    restored = result_from_doc(result_to_doc(value))
    assert type(restored) is type(value)


@pytest.mark.parametrize("x", AWKWARD)
def test_floats_cross_the_wire_bit_exactly(x):
    restored = result_from_doc(result_to_doc(x))
    assert restored == x and isinstance(restored, float)


def test_path_result_round_trips_bit_exactly():
    path = PathResult(distance=0.1 + 0.2, doors=[4, 0, 17])
    restored = result_from_doc(result_to_doc(path))
    assert restored.distance == path.distance
    assert restored.doors == path.doors


def test_neighbor_list_round_trips_bit_exactly():
    neighbors = [Neighbor(object_id=i, distance=x)
                 for i, x in enumerate(AWKWARD)]
    restored = result_from_doc(result_to_doc(neighbors))
    assert restored == neighbors
    assert result_from_doc(result_to_doc([])) == []


def test_result_doc_is_the_cross_transport_normal_form():
    """QueryStats describe work done, not the answer: two results that
    differ only in stats encode to the same document."""
    worked = PathResult(distance=1.5, doors=[2], stats=QueryStats(nodes_visited=9))
    fresh = PathResult(distance=1.5, doors=[2])
    assert result_to_doc(worked) == result_to_doc(fresh)


def test_unencodable_result_raises():
    with pytest.raises(ProtocolError, match="unencodable"):
        result_to_doc(object())


def test_unknown_result_tag_raises():
    with pytest.raises(ProtocolError, match="unknown result type"):
        result_from_doc({"t": "quaternion", "v": 1})
    with pytest.raises(ProtocolError, match="malformed result"):
        result_from_doc({"v": 1})


# ----------------------------------------------------------------------
# Replies and error transport
# ----------------------------------------------------------------------
def test_success_reply_round_trips():
    reply = Response(request_id=7, result=result_to_doc([Neighbor(1, 2.5)]))
    restored = reply_from_doc(reply_to_doc(reply))
    assert restored == reply
    assert restored.value() == [Neighbor(1, 2.5)]


def test_known_exception_classes_survive_the_wire():
    reply = reply_from_doc(reply_to_doc(error_reply(3, QueryError("object 9 gone"))))
    assert isinstance(reply, ErrorResponse) and reply.request_id == 3
    exc = reply.exception()
    assert type(exc) is QueryError and "object 9 gone" in str(exc)


def test_unknown_exception_degrades_to_serving_error():
    class ExoticError(RuntimeError):
        pass

    exc = reply_from_doc(
        reply_to_doc(error_reply(1, ExoticError("boom")))
    ).exception()
    assert type(exc) is ServingError
    assert "ExoticError" in str(exc) and "boom" in str(exc)


def test_malformed_reply_document_raises():
    with pytest.raises(ProtocolError, match="malformed reply"):
        reply_from_doc({"result": {}})


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def test_frame_round_trip():
    doc = request_to_doc(Request(venue="v", kind="ping"), 9)
    frame = encode_frame(doc)
    assert int.from_bytes(frame[:4], "big") == len(frame) - 4
    assert decode_frame(frame[4:]) == doc


def test_oversized_frame_fails_on_the_sending_side():
    with pytest.raises(ProtocolError, match="exceeds"):
        encode_frame({"blob": "x" * 64}, max_bytes=32)


def test_undecodable_frame_payloads_raise():
    with pytest.raises(ProtocolError, match="undecodable"):
        decode_frame(b"\xff\xfe not json")
    with pytest.raises(ProtocolError, match="JSON object"):
        decode_frame(b"[1, 2, 3]")


def _pipe():
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    return a, b


def test_send_recv_over_a_socket():
    a, b = _pipe()
    try:
        docs = [request_to_doc(Request(venue="v", kind="knn"), i)
                for i in range(3)]

        def write_all():
            for d in docs:
                send_doc(a, d)

        writer = threading.Thread(target=write_all)
        writer.start()
        received = [recv_doc(b) for _ in range(3)]
        writer.join(timeout=5)
        assert received == docs
    finally:
        a.close()
        b.close()


def test_clean_eof_between_frames_is_none():
    a, b = _pipe()
    send_doc(a, {"t": "none"})
    a.close()
    try:
        assert recv_doc(b) == {"t": "none"}
        assert recv_doc(b) is None  # peer closed between frames: not an error
    finally:
        b.close()


def test_truncated_header_raises():
    a, b = _pipe()
    a.sendall(b"\x00\x00")  # 2 of 4 header bytes, then EOF
    a.close()
    try:
        with pytest.raises(ProtocolError, match="truncated frame.*header"):
            recv_doc(b)
    finally:
        b.close()


def test_truncated_payload_raises():
    a, b = _pipe()
    frame = encode_frame({"t": "none"})
    a.sendall(frame[:-3])  # declared length never arrives
    a.close()
    try:
        with pytest.raises(ProtocolError, match="truncated frame.*payload"):
            recv_doc(b)
    finally:
        b.close()


def test_oversized_declared_length_raises_before_reading_payload():
    a, b = _pipe()
    a.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
    try:
        with pytest.raises(ProtocolError, match="oversized frame"):
            recv_doc(b)
    finally:
        a.close()
        b.close()


def test_reader_side_frame_limit_wins_over_the_default():
    a, b = _pipe()
    a.sendall(encode_frame({"blob": "x" * 64}))  # fine for the default limit
    try:
        with pytest.raises(ProtocolError, match="oversized frame"):
            recv_doc(b, max_bytes=16)
    finally:
        a.close()
        b.close()


# ----------------------------------------------------------------------
# Batch envelope: ordering, isolation, wire compatibility
# ----------------------------------------------------------------------
def _batch_of(n: int) -> BatchRequest:
    source, target = _points()
    return BatchRequest(tuple(
        Request(venue=f"{i:064d}", kind="distance", source=source,
                target=target)
        for i in range(n)
    ))


def test_batch_request_round_trips_in_order():
    batch = _batch_of(5)
    doc = batch_request_to_doc(batch, [10, 11, 12, 13, 14])
    assert is_batch_doc(doc)
    slots = batch_request_from_doc(doc)
    assert [rid for _, rid in slots] == [10, 11, 12, 13, 14]
    assert tuple(req for req, _ in slots) == batch.requests


def test_single_frames_are_untouched_by_batching():
    """A single-request document carries no ``batch`` key — the
    discriminator — so pre-batch frames are byte-identical."""
    doc = request_to_doc(Request(venue="v", kind="ping"), 1)
    assert not is_batch_doc(doc)
    reply_doc = reply_to_doc(Response(1, result_to_doc(None)))
    assert not is_batch_doc(reply_doc)


def test_batch_isolates_a_malformed_element():
    batch = _batch_of(3)
    doc = batch_request_to_doc(batch, [0, 1, 2])
    del doc["batch"][1]["venue"]  # damage one element's fields
    slots = batch_request_from_doc(doc)
    assert isinstance(slots[0], tuple) and isinstance(slots[2], tuple)
    damaged = slots[1]
    assert isinstance(damaged, ErrorResponse)
    assert damaged.request_id == 1  # id salvaged from the element
    assert damaged.error == "ProtocolError"


def test_batch_element_without_salvageable_id_gets_minus_one():
    doc = batch_request_to_doc(_batch_of(1), [7])
    doc["batch"][0] = {"kind": "distance"}  # no id, no venue
    (damaged,) = batch_request_from_doc(doc)
    assert isinstance(damaged, ErrorResponse) and damaged.request_id == -1


@pytest.mark.parametrize("envelope", [
    {"batch": []}, {"batch": 42}, {"batch": "nope"}, {"batch": None},
])
def test_damaged_batch_envelope_is_fatal(envelope):
    with pytest.raises(ProtocolError):
        batch_request_from_doc(envelope)


def test_batch_element_of_wrong_type_is_fatal():
    with pytest.raises(ProtocolError, match="request document"):
        batch_request_from_doc({"batch": [["not", "a", "doc"]]})


def test_batch_size_limits():
    with pytest.raises(ProtocolError, match="at least one"):
        batch_request_to_doc(BatchRequest(()), [])
    with pytest.raises(ProtocolError, match="exactly as many ids"):
        batch_request_to_doc(_batch_of(2), [0])
    over = {"batch": [{"id": i} for i in range(MAX_BATCH_REQUESTS + 1)]}
    with pytest.raises(ProtocolError, match="exceeds"):
        batch_request_from_doc(over)


def test_batch_reply_round_trips_with_isolated_errors():
    replies = (
        Response(0, result_to_doc([Neighbor(1, 2.5)])),
        error_reply(1, QueryError("gone")),
        Response(2, result_to_doc(None)),
    )
    restored = batch_reply_from_doc(batch_reply_to_doc(BatchResponse(replies)))
    assert restored.replies == replies
    values = restored.values()
    assert values[0] == [Neighbor(1, 2.5)]
    assert isinstance(values[1], QueryError)  # instance, not raised
    assert values[2] is None


def test_damaged_batch_reply_envelope_raises():
    with pytest.raises(ProtocolError, match="list of replies"):
        batch_reply_from_doc({"batch": 3})


# ----------------------------------------------------------------------
# Overload rider: typed retry-after across the wire
# ----------------------------------------------------------------------
def test_overloaded_error_carries_retry_after_across_the_wire():
    reply = reply_from_doc(reply_to_doc(error_reply(
        4, OverloadedError("venue hot", retry_after=0.125))))
    assert isinstance(reply, ErrorResponse)
    assert reply.retry_after == 0.125
    exc = reply.exception()
    assert type(exc) is OverloadedError and exc.retry_after == 0.125


def test_depth_shed_overload_has_no_retry_horizon():
    exc = reply_from_doc(reply_to_doc(error_reply(
        4, OverloadedError("depth")))).exception()
    assert type(exc) is OverloadedError and exc.retry_after is None


def test_plain_errors_stay_byte_identical_without_retry_after():
    doc = reply_to_doc(error_reply(1, QueryError("x")))
    assert "retry_after" not in doc  # old wire format untouched


# ----------------------------------------------------------------------
# Adversarial framing fuzz: the reader never hangs
# ----------------------------------------------------------------------
FUZZ = dict(max_examples=50, deadline=None)

#: a received frame resolves one of exactly three ways
_RESOLVED = "ProtocolError, a decoded document, or clean EOF"


def _drain(sock) -> None:
    """Read frames until the stream resolves; every step must be one
    of: a decoded doc, clean EOF (None), or ProtocolError. A hang
    surfaces as ``socket.timeout`` — a test failure, by design."""
    for _ in range(64):  # any fuzz input resolves well before this
        try:
            if recv_doc(sock) is None:
                return
        except ProtocolError:
            return
    raise AssertionError(f"stream did not resolve to {_RESOLVED}")


@settings(**FUZZ)
@given(prefix=st.binary(min_size=4, max_size=4),
       payload=st.binary(max_size=256))
def test_fuzz_mangled_length_prefix_never_hangs(prefix, payload):
    """Arbitrary 4-byte length prefix + arbitrary payload: the reader
    answers ProtocolError (oversize/truncation/undecodable), a doc, or
    EOF — it never blocks past its timeout."""
    a, b = _pipe()
    try:
        a.sendall(prefix + payload)
        a.close()
        _drain(b)
    finally:
        b.close()


@settings(**FUZZ)
@given(cut=st.integers(min_value=0, max_value=10_000),
       blob=st.text(max_size=64))
def test_fuzz_truncation_at_any_byte_offset(cut, blob):
    """A valid frame cut at any byte offset: EOF at a frame boundary
    (cut 0 or full length) is clean; anywhere else is ProtocolError."""
    frame = encode_frame({"blob": blob})
    cut = min(cut, len(frame))
    a, b = _pipe()
    try:
        a.sendall(frame[:cut])
        a.close()
        if cut == 0:
            assert recv_doc(b) is None
        elif cut == len(frame):
            assert recv_doc(b) == {"blob": blob}
            assert recv_doc(b) is None
        else:
            with pytest.raises(ProtocolError, match="truncated|oversized"):
                recv_doc(b)
    finally:
        b.close()


@settings(**FUZZ)
@given(garbage=st.binary(min_size=1, max_size=64))
def test_fuzz_garbage_spliced_between_valid_frames(garbage):
    """Valid frame, then garbage, then another valid frame: the first
    frame always decodes; after the splice the reader resolves — it
    never wedges waiting for bytes that already arrived."""
    first, second = {"seq": 1}, {"seq": 2}
    a, b = _pipe()
    try:
        a.sendall(encode_frame(first) + garbage + encode_frame(second))
        a.close()
        assert recv_doc(b) == first
        _drain(b)  # garbage may mimic frames; it must still resolve
    finally:
        b.close()
