"""The serving wire protocol: codecs, framing, and error transport.

Pure protocol-layer tests — no worker processes. Covers the edge cases
the sharded cluster depends on: bit-exact value round-trips (floats
cross the wire through packed base64, not JSON decimals), oversized
and truncated frames, malformed documents, unknown request/result
kinds, and exception reconstruction on the client side.
"""

from __future__ import annotations

import math
import socket
import threading

import pytest

from repro.core.results import Neighbor, PathResult, QueryStats
from repro.exceptions import ProtocolError, QueryError, ServingError
from repro.model.entities import IndoorPoint
from repro.model.objects import UpdateOp
from repro.serving.protocol import (
    CONTROL_KINDS,
    MAX_FRAME_BYTES,
    QUERY_KINDS,
    REQUEST_KINDS,
    ErrorResponse,
    Request,
    Response,
    decode_frame,
    encode_frame,
    error_reply,
    recv_doc,
    reply_from_doc,
    reply_to_doc,
    request_from_doc,
    request_to_doc,
    result_from_doc,
    result_to_doc,
    send_doc,
)

#: floats with no short decimal representation — the wire must carry
#: them bit-for-bit, not through repr/parse round-trips
AWKWARD = (0.1 + 0.2, math.pi, 1e-309, 2.0**52 + 0.5)


# ----------------------------------------------------------------------
# Request codec
# ----------------------------------------------------------------------
def _points():
    return IndoorPoint(3, 1.25, -7.5), IndoorPoint(9, 0.1 + 0.2, 4.0)


@pytest.mark.parametrize("kind", QUERY_KINDS)
def test_request_round_trips_every_query_kind(kind):
    source, target = _points()
    request = Request(
        venue="a" * 64, kind=kind, source=source,
        target=target if kind in ("distance", "path") else None,
        k=7 if kind == "knn" else 0,
        radius=12.5 if kind == "range" else 0.0,
        op=UpdateOp(kind="move", object_id=4, location=source)
        if kind == "update" else None,
    )
    decoded, request_id = request_from_doc(request_to_doc(request, 123))
    assert request_id == 123
    assert decoded == request


@pytest.mark.parametrize("op_kind", ("insert", "delete", "move"))
def test_update_ops_round_trip(op_kind):
    source, _ = _points()
    op = UpdateOp(kind=op_kind, object_id=11, location=source,
                  label="cart-11", category="cart")
    request = Request(venue="v", kind="update", op=op)
    decoded, _ = request_from_doc(request_to_doc(request, 0))
    assert decoded.op == op


@pytest.mark.parametrize("kind", CONTROL_KINDS)
def test_control_requests_round_trip_payload(kind):
    request = Request(venue="", kind=kind, payload={"x": [1, 2], "y": "z"})
    decoded, _ = request_from_doc(request_to_doc(request, 5))
    assert decoded == request
    assert kind in REQUEST_KINDS


def test_malformed_request_document_raises():
    doc = request_to_doc(Request(venue="v", kind="distance"), 1)
    del doc["venue"]
    with pytest.raises(ProtocolError, match="malformed request"):
        request_from_doc(doc)
    with pytest.raises(ProtocolError):
        request_from_doc({"id": 1, "venue": "v", "kind": "knn",
                          "source": [1]})  # truncated point triple


# ----------------------------------------------------------------------
# Result codec
# ----------------------------------------------------------------------
@pytest.mark.parametrize("value", [
    None, True, False, 3, -1, "venue-id", {"nested": {"doc": [1, 2]}},
])
def test_plain_results_round_trip(value):
    assert result_from_doc(result_to_doc(value)) == value
    restored = result_from_doc(result_to_doc(value))
    assert type(restored) is type(value)


@pytest.mark.parametrize("x", AWKWARD)
def test_floats_cross_the_wire_bit_exactly(x):
    restored = result_from_doc(result_to_doc(x))
    assert restored == x and isinstance(restored, float)


def test_path_result_round_trips_bit_exactly():
    path = PathResult(distance=0.1 + 0.2, doors=[4, 0, 17])
    restored = result_from_doc(result_to_doc(path))
    assert restored.distance == path.distance
    assert restored.doors == path.doors


def test_neighbor_list_round_trips_bit_exactly():
    neighbors = [Neighbor(object_id=i, distance=x)
                 for i, x in enumerate(AWKWARD)]
    restored = result_from_doc(result_to_doc(neighbors))
    assert restored == neighbors
    assert result_from_doc(result_to_doc([])) == []


def test_result_doc_is_the_cross_transport_normal_form():
    """QueryStats describe work done, not the answer: two results that
    differ only in stats encode to the same document."""
    worked = PathResult(distance=1.5, doors=[2], stats=QueryStats(nodes_visited=9))
    fresh = PathResult(distance=1.5, doors=[2])
    assert result_to_doc(worked) == result_to_doc(fresh)


def test_unencodable_result_raises():
    with pytest.raises(ProtocolError, match="unencodable"):
        result_to_doc(object())


def test_unknown_result_tag_raises():
    with pytest.raises(ProtocolError, match="unknown result type"):
        result_from_doc({"t": "quaternion", "v": 1})
    with pytest.raises(ProtocolError, match="malformed result"):
        result_from_doc({"v": 1})


# ----------------------------------------------------------------------
# Replies and error transport
# ----------------------------------------------------------------------
def test_success_reply_round_trips():
    reply = Response(request_id=7, result=result_to_doc([Neighbor(1, 2.5)]))
    restored = reply_from_doc(reply_to_doc(reply))
    assert restored == reply
    assert restored.value() == [Neighbor(1, 2.5)]


def test_known_exception_classes_survive_the_wire():
    reply = reply_from_doc(reply_to_doc(error_reply(3, QueryError("object 9 gone"))))
    assert isinstance(reply, ErrorResponse) and reply.request_id == 3
    exc = reply.exception()
    assert type(exc) is QueryError and "object 9 gone" in str(exc)


def test_unknown_exception_degrades_to_serving_error():
    class ExoticError(RuntimeError):
        pass

    exc = reply_from_doc(
        reply_to_doc(error_reply(1, ExoticError("boom")))
    ).exception()
    assert type(exc) is ServingError
    assert "ExoticError" in str(exc) and "boom" in str(exc)


def test_malformed_reply_document_raises():
    with pytest.raises(ProtocolError, match="malformed reply"):
        reply_from_doc({"result": {}})


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def test_frame_round_trip():
    doc = request_to_doc(Request(venue="v", kind="ping"), 9)
    frame = encode_frame(doc)
    assert int.from_bytes(frame[:4], "big") == len(frame) - 4
    assert decode_frame(frame[4:]) == doc


def test_oversized_frame_fails_on_the_sending_side():
    with pytest.raises(ProtocolError, match="exceeds"):
        encode_frame({"blob": "x" * 64}, max_bytes=32)


def test_undecodable_frame_payloads_raise():
    with pytest.raises(ProtocolError, match="undecodable"):
        decode_frame(b"\xff\xfe not json")
    with pytest.raises(ProtocolError, match="JSON object"):
        decode_frame(b"[1, 2, 3]")


def _pipe():
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    return a, b


def test_send_recv_over_a_socket():
    a, b = _pipe()
    try:
        docs = [request_to_doc(Request(venue="v", kind="knn"), i)
                for i in range(3)]

        def write_all():
            for d in docs:
                send_doc(a, d)

        writer = threading.Thread(target=write_all)
        writer.start()
        received = [recv_doc(b) for _ in range(3)]
        writer.join(timeout=5)
        assert received == docs
    finally:
        a.close()
        b.close()


def test_clean_eof_between_frames_is_none():
    a, b = _pipe()
    send_doc(a, {"t": "none"})
    a.close()
    try:
        assert recv_doc(b) == {"t": "none"}
        assert recv_doc(b) is None  # peer closed between frames: not an error
    finally:
        b.close()


def test_truncated_header_raises():
    a, b = _pipe()
    a.sendall(b"\x00\x00")  # 2 of 4 header bytes, then EOF
    a.close()
    try:
        with pytest.raises(ProtocolError, match="truncated frame.*header"):
            recv_doc(b)
    finally:
        b.close()


def test_truncated_payload_raises():
    a, b = _pipe()
    frame = encode_frame({"t": "none"})
    a.sendall(frame[:-3])  # declared length never arrives
    a.close()
    try:
        with pytest.raises(ProtocolError, match="truncated frame.*payload"):
            recv_doc(b)
    finally:
        b.close()


def test_oversized_declared_length_raises_before_reading_payload():
    a, b = _pipe()
    a.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
    try:
        with pytest.raises(ProtocolError, match="oversized frame"):
            recv_doc(b)
    finally:
        a.close()
        b.close()


def test_reader_side_frame_limit_wins_over_the_default():
    a, b = _pipe()
    a.sendall(encode_frame({"blob": "x" * 64}))  # fine for the default limit
    try:
        with pytest.raises(ProtocolError, match="oversized frame"):
            recv_doc(b, max_bytes=16)
    finally:
        a.close()
        b.close()
