"""Stress test: one thread-safe engine hammered from many threads.

The contract under test (``QueryEngine(thread_safe=True)``, see the
engine module docstring): concurrent queries with interleaved updates
never crash, never corrupt the object index, always return answers
consistent with *some* sequentially-applied prefix of the updates, and
``stats()`` counters sum **exactly** once the threads are quiescent.

Oracle checking under concurrency:

* distance/path answers are object-independent, so every answer is
  checked against a precomputed Dijkstra-oracle value *during* the
  storm,
* kNN/range answers depend on when updates land; they are checked for
  internal consistency during the storm (sorted, non-negative, k
  bounded) and against the oracle on the final object population once
  the threads have joined,
* the incrementally-maintained ``ObjectIndex`` must be structurally
  identical to a fresh build over the final object set.

Marked ``slow`` (a few seconds of real threading) but kept in the
default CI run — this is the test that guards the serving layer's
foundation.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro import ObjectIndex, VIPTree
from repro.baselines import DijkstraOracle
from repro.datasets import build_mall, random_objects, random_point
from repro.engine import QueryEngine

N_QUERY_THREADS = 4
QUERIES_PER_THREAD = 300
N_UPDATES = 200


@pytest.fixture(scope="module")
def storm_setup():
    space = build_mall("tiny", name="storm-mall")
    tree = VIPTree.build(space)
    objects = random_objects(space, 18, seed=3)
    oracle = DijkstraOracle(space, tree.d2d)
    return space, tree, objects, oracle


def _neighbors(result):
    return [(round(n.distance, 8), n.object_id) for n in result]


@pytest.mark.slow
def test_concurrent_queries_with_interleaved_updates(storm_setup):
    space, tree, objects, oracle = storm_setup
    engine = QueryEngine(tree, ObjectIndex(tree, objects), thread_safe=True)

    rng = random.Random(11)
    points = [random_point(space, rng) for _ in range(40)]
    # Object-independent ground truth, usable mid-storm.
    expected_distance = {
        (i, j): oracle.shortest_distance(points[i], points[j])
        for i in range(0, 12) for j in range(12, 24)
    }

    errors: list[BaseException] = []
    issued = [dict(distance=0, path=0, knn=0, range=0) for _ in range(N_QUERY_THREADS)]
    barrier = threading.Barrier(N_QUERY_THREADS + 1, timeout=30)

    def query_worker(wid: int):
        try:
            r = random.Random(100 + wid)
            barrier.wait()
            for _ in range(QUERIES_PER_THREAD):
                roll = r.random()
                if roll < 0.4:
                    q = r.choice(points)
                    got = engine.knn(q, 3)
                    issued[wid]["knn"] += 1
                    assert len(got) <= 3
                    ds = [n.distance for n in got]
                    assert ds == sorted(ds) and all(d >= 0 for d in ds)
                elif roll < 0.6:
                    q = r.choice(points)
                    got = engine.range_query(q, 30.0)
                    issued[wid]["range"] += 1
                    assert all(0 <= n.distance <= 30.0 for n in got)
                elif roll < 0.9:
                    i, j = r.randrange(0, 12), r.randrange(12, 24)
                    got = engine.distance(points[i], points[j])
                    issued[wid]["distance"] += 1
                    assert got == pytest.approx(expected_distance[(i, j)])
                else:
                    i, j = r.randrange(0, 12), r.randrange(12, 24)
                    got = engine.path(points[i], points[j])
                    issued[wid]["path"] += 1
                    assert got.distance == pytest.approx(expected_distance[(i, j)])
        except BaseException as exc:  # noqa: BLE001 - surfaced after join
            errors.append(exc)

    applied = []

    def update_worker():
        try:
            r = random.Random(999)
            barrier.wait()
            for n in range(N_UPDATES):
                live = engine.objects.live_ids()
                roll = r.random()
                if roll < 0.2 or len(live) < 5:
                    engine.insert_object(random_point(space, r), label=f"storm-{n}")
                elif roll < 0.3:
                    engine.delete_object(r.choice(live))
                else:
                    engine.move_object(r.choice(live), random_point(space, r))
                applied.append(n)
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=query_worker, args=(w,))
               for w in range(N_QUERY_THREADS)]
    threads.append(threading.Thread(target=update_worker))
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not any(t.is_alive() for t in threads), "storm deadlocked"
    assert not errors, f"{len(errors)} worker failure(s): {errors[0]!r}"

    # ------------------------------------------------------------------
    # Quiescent: counters must sum exactly.
    # ------------------------------------------------------------------
    stats = engine.stats()
    for kind in ("distance", "path", "knn", "range"):
        want = sum(w[kind] for w in issued)
        assert getattr(stats, f"{kind}_queries") == want, kind
    assert stats.queries == N_QUERY_THREADS * QUERIES_PER_THREAD
    assert stats.updates == len(applied) == N_UPDATES
    # every update invalidates once; racing stale-version readers must
    # not inflate the count beyond one event per version change
    assert stats.invalidations == N_UPDATES
    for kind in ("distance", "path", "knn", "range"):
        hits = getattr(stats, f"{kind}_hits")
        misses = getattr(stats, f"{kind}_misses")
        assert hits + misses == getattr(stats, f"{kind}_queries"), kind

    # ------------------------------------------------------------------
    # Final state: index integrity and oracle equality.
    # ------------------------------------------------------------------
    fresh = ObjectIndex(tree, engine.objects)
    incremental = engine.object_index
    assert {k: sorted(v) for k, v in incremental.leaf_objects.items()} == \
        {k: sorted(v) for k, v in fresh.leaf_objects.items()}
    assert incremental.access_lists == fresh.access_lists
    assert incremental.node_counts == fresh.node_counts

    for q in points[:8]:
        got = _neighbors(engine.knn(q, 5))
        want = [(round(d, 8), oid) for d, oid in oracle.knn(q, engine.objects, 5)]
        assert got == want, "post-storm kNN diverged from the oracle"
        got_r = _neighbors(engine.range_query(q, 35.0))
        want_r = [(round(d, 8), oid)
                  for d, oid in oracle.range_query(q, engine.objects, 35.0)]
        assert got_r == want_r, "post-storm range diverged from the oracle"


@pytest.mark.slow
def test_thread_safe_engine_answers_match_plain_engine(storm_setup):
    """thread_safe=True must not change any answer (single-threaded)."""
    space, tree, objects, oracle = storm_setup
    plain = QueryEngine(tree, ObjectIndex(tree, random_objects(space, 18, seed=3)))
    guarded = QueryEngine(tree, ObjectIndex(tree, random_objects(space, 18, seed=3)),
                          thread_safe=True)
    rng = random.Random(55)
    for _ in range(60):
        q, t = random_point(space, rng), random_point(space, rng)
        assert plain.distance(q, t) == guarded.distance(q, t)
        assert plain.path(q, t).doors == guarded.path(q, t).doors
        assert _neighbors(plain.knn(q, 4)) == _neighbors(guarded.knn(q, 4))
        assert _neighbors(plain.range_query(q, 25.0)) == \
            _neighbors(guarded.range_query(q, 25.0))
    a, b = plain.stats(), guarded.stats()
    assert a.as_dict() == b.as_dict()


def test_thread_churn_does_not_leak_contexts(storm_setup):
    """Dead threads' QueryContexts are pruned (counters folded), so a
    thread-per-request embedder cannot grow the registry unboundedly."""
    space, tree, objects, oracle = storm_setup
    engine = QueryEngine(tree, ObjectIndex(tree, objects), thread_safe=True)
    rng = random.Random(3)
    # distinct points: every query misses the kNN result cache and so
    # actually exercises (and counts in) its thread's QueryContext
    points = [random_point(space, rng) for _ in range(26)]

    def one_query(p):
        engine.knn(p, 2)

    for p in points[:25]:  # 25 short-lived threads, strictly sequential
        t = threading.Thread(target=one_query, args=(p,))
        t.start()
        t.join(timeout=30)
    # next registration prunes everything dead
    engine.knn(points[25], 2)
    assert len(engine._ctx_registry) <= 2
    stats = engine.stats()
    assert stats.knn_queries == 26
    # folded counters survive pruning: every thread resolved its endpoint
    assert stats.endpoint_hits + stats.endpoint_misses == 26


@pytest.mark.slow
def test_clear_caches_concurrent_with_queries(storm_setup):
    """clear_caches mid-storm never corrupts answers or deadlocks."""
    space, tree, objects, oracle = storm_setup
    engine = QueryEngine(tree, ObjectIndex(tree, objects), thread_safe=True)
    rng = random.Random(2)
    points = [random_point(space, rng) for _ in range(10)]
    truth = {i: _neighbors(engine.knn(points[i], 3)) for i in range(len(points))}

    errors: list[BaseException] = []
    stop = threading.Event()

    def querier():
        try:
            r = random.Random(7)
            while not stop.is_set():
                i = r.randrange(len(points))
                assert _neighbors(engine.knn(points[i], 3)) == truth[i]
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=querier) for _ in range(3)]
    for t in threads:
        t.start()
    for _ in range(50):
        engine.clear_caches()
    stop.set()
    for t in threads:
        t.join(timeout=30)
    assert not any(t.is_alive() for t in threads)
    assert not errors, errors[0]
