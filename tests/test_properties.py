"""Property-based tests on randomly generated venues.

Every property pits an index against the plain-Dijkstra oracle (or an
independently recomputed invariant) on venues drawn from the full
builder vocabulary: multiple floors, hallway chains, rooms with extra
doors, staircases and lifts.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings

from repro import IndoorPoint, IPTree, ObjectIndex, VIPTree, make_object_set
from repro.baselines import DijkstraOracle, DistanceMatrix, Road
from repro.core.query_path import path_length
from repro.datasets import replicate_space
from repro.model.d2d import build_d2d_graph
from repro.model.entities import PartitionCategory

from strategies import venues

COMMON = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def pick_points(space, count, seed=0):
    rng = random.Random(seed)
    pids = [
        p.partition_id
        for p in space.partitions
        if p.floor is not None and p.fixed_traversal is None
    ]
    pts = []
    for _ in range(count):
        pid = rng.choice(pids)
        doors = space.partitions[pid].door_ids
        xs = [space.doors[d].position.x for d in doors]
        ys = [space.doors[d].position.y for d in doors]
        pts.append(
            IndoorPoint(pid, min(xs) + rng.random() * 2.0, min(ys) + rng.random())
        )
    return pts


@given(space=venues())
@settings(**COMMON)
def test_vip_distance_equals_oracle(space):
    vip = VIPTree.build(space)
    oracle = DijkstraOracle(space, vip.d2d)
    pts = pick_points(space, 6, seed=1)
    for s, t in zip(pts[:3], pts[3:]):
        assert abs(vip.shortest_distance(s, t) - oracle.shortest_distance(s, t)) < 1e-8


@given(space=venues())
@settings(**COMMON)
def test_ip_distance_equals_oracle(space):
    ip = IPTree.build(space)
    oracle = DijkstraOracle(space, ip.d2d)
    pts = pick_points(space, 6, seed=2)
    for s, t in zip(pts[:3], pts[3:]):
        assert abs(ip.shortest_distance(s, t) - oracle.shortest_distance(s, t)) < 1e-8


@given(space=venues())
@settings(**COMMON)
def test_path_length_equals_distance(space):
    vip = VIPTree.build(space)
    ip = IPTree.build(space, d2d=vip.d2d)
    pts = pick_points(space, 4, seed=3)
    for s, t in zip(pts[:2], pts[2:]):
        for tree in (ip, vip):
            res = tree.shortest_path(s, t)
            assert abs(path_length(tree, res, s, t) - res.distance) < 1e-8
            for x, y in zip(res.doors, res.doors[1:]):
                assert tree.d2d.has_edge(x, y)


@given(space=venues())
@settings(**COMMON)
def test_knn_equals_bruteforce(space):
    vip = VIPTree.build(space)
    oracle = DijkstraOracle(space, vip.d2d)
    pts = pick_points(space, 5, seed=4)
    objects = make_object_set(space, pts[1:])
    oi = ObjectIndex(vip, objects)
    q = pts[0]
    got = [round(n.distance, 8) for n in vip.knn(oi, q, 3)]
    expected = [round(d, 8) for d, _ in oracle.knn(q, objects, 3)]
    assert got == pytest.approx(expected, abs=1e-7)


@given(space=venues())
@settings(**COMMON)
def test_range_equals_bruteforce(space):
    ip = IPTree.build(space)
    oracle = DijkstraOracle(space, ip.d2d)
    pts = pick_points(space, 5, seed=5)
    objects = make_object_set(space, pts[1:])
    oi = ObjectIndex(ip, objects)
    q = pts[0]
    for radius in (5.0, 25.0):
        got = {(round(n.distance, 8), n.object_id) for n in ip.range_query(oi, q, radius)}
        expected = {
            (round(d, 8), i) for d, i in oracle.range_query(q, objects, radius)
        }
        assert got == expected


@given(space=venues())
@settings(**COMMON)
def test_tree_invariants(space):
    tree = IPTree.build(space)
    # leaves partition the partitions
    seen = sorted(pid for n in tree.nodes if n.is_leaf for pid in n.partitions)
    assert seen == list(range(space.num_partitions))
    # one hallway per leaf (rule ii)
    for node in tree.nodes:
        if node.is_leaf:
            hallways = [
                pid
                for pid in node.partitions
                if space.category(pid) is PartitionCategory.HALLWAY
            ]
            assert len(hallways) <= 1
    # matrices complete, chains rooted
    for node in tree.nodes:
        assert node.table is not None and node.table.is_complete()
        if node.is_leaf:
            assert tree.chain_of_leaf(node.nid)[-1] == tree.root_id


@given(space=venues())
@settings(**COMMON)
def test_distmx_equals_oracle(space):
    mx = DistanceMatrix(space)
    oracle = DijkstraOracle(space, mx.d2d)
    pts = pick_points(space, 4, seed=6)
    for s, t in zip(pts[:2], pts[2:]):
        assert abs(mx.shortest_distance(s, t) - oracle.shortest_distance(s, t)) < 1e-8


@given(space=venues())
@settings(**COMMON)
def test_road_equals_oracle(space):
    road = Road(space)
    oracle = DijkstraOracle(space, road.graph)
    pts = pick_points(space, 4, seed=7)
    for s, t in zip(pts[:2], pts[2:]):
        assert abs(road.shortest_distance(s, t) - oracle.shortest_distance(s, t)) < 1e-8


@given(space=venues())
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
def test_replication_preserves_validity(space):
    try:
        double = replicate_space(space, times=2)
    except Exception:
        # venues without hallways on seam floors are legitimately rejected
        from repro import VenueError

        with pytest.raises(VenueError):
            replicate_space(space, times=2)
        return
    build_d2d_graph(double)
    assert double.num_doors >= 2 * space.num_doors


@given(space=venues())
@settings(**COMMON)
def test_distance_symmetry_and_triangle(space):
    vip = VIPTree.build(space)
    pts = pick_points(space, 3, seed=8)
    a, b, c = pts
    ab = vip.shortest_distance(a, b)
    ba = vip.shortest_distance(b, a)
    assert abs(ab - ba) < 1e-8
    ac = vip.shortest_distance(a, c)
    cb = vip.shortest_distance(c, b)
    assert ab <= ac + cb + 1e-8
