"""Unit tests for doors, partitions and the paper's partition categories."""

import pytest

from repro import IndoorPoint, PartitionCategory, PartitionKind
from repro.model.entities import DEFAULT_DELTA, Door, Partition
from repro.model.geometry import Point


def make_partition(num_doors: int, **kwargs) -> Partition:
    return Partition(
        partition_id=0, door_ids=list(range(num_doors)), **kwargs
    )


class TestCategories:
    def test_single_door_is_no_through(self):
        assert make_partition(1).category() is PartitionCategory.NO_THROUGH

    def test_zero_doors_is_no_through(self):
        assert make_partition(0).category() is PartitionCategory.NO_THROUGH

    def test_two_doors_is_general(self):
        assert make_partition(2).category() is PartitionCategory.GENERAL

    def test_delta_doors_is_general(self):
        # the paper: "more than delta doors" is a hallway
        assert make_partition(DEFAULT_DELTA).category() is PartitionCategory.GENERAL

    def test_delta_plus_one_is_hallway(self):
        assert make_partition(DEFAULT_DELTA + 1).category() is PartitionCategory.HALLWAY

    def test_custom_delta(self):
        p = make_partition(3)
        assert p.category(delta=2) is PartitionCategory.HALLWAY
        assert p.category(delta=10) is PartitionCategory.GENERAL

    def test_kind_does_not_affect_category(self):
        p = make_partition(2, kind=PartitionKind.STAIRCASE)
        assert p.category() is PartitionCategory.GENERAL

    def test_default_delta_is_paper_value(self):
        assert DEFAULT_DELTA == 4


class TestDoor:
    def test_fields(self):
        d = Door(door_id=3, position=Point(1, 2, 0), label="d3")
        assert d.door_id == 3
        assert d.position == Point(1, 2, 0)
        assert d.label == "d3"


class TestIndoorPoint:
    def test_position_materializes_floor(self):
        p = IndoorPoint(partition_id=2, x=1.0, y=2.0)
        assert p.position(3.0) == Point(1.0, 2.0, 3.0)

    def test_frozen(self):
        p = IndoorPoint(0, 0.0, 0.0)
        with pytest.raises(AttributeError):
            p.x = 1.0  # type: ignore[misc]

    def test_equality(self):
        assert IndoorPoint(1, 2.0, 3.0) == IndoorPoint(1, 2.0, 3.0)
        assert IndoorPoint(1, 2.0, 3.0) != IndoorPoint(2, 2.0, 3.0)


class TestPartitionKind:
    @pytest.mark.parametrize(
        "kind", ["room", "hallway", "staircase", "lift", "escalator", "outdoor"]
    )
    def test_round_trip_from_value(self, kind):
        assert PartitionKind(kind).value == kind
