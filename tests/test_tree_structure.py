"""Structural invariants of the IP-Tree (leaves, merging, matrices)."""

import pytest

from repro import ConstructionError, IPTree, PartitionCategory
from repro.core.leaves import build_leaves, leaf_access_doors, leaf_door_sets
from repro.core.merging import create_next_level, merged_access_doors
from repro.core.table import NO_DOOR, DistanceTable
from repro.graph.dijkstra import dijkstra


def naive_access_doors(space, leaves):
    """Independent recomputation of Definition 1."""
    leaf_of = {}
    for idx, leaf in enumerate(leaves):
        for pid in leaf:
            leaf_of[pid] = idx
    result = [set() for _ in leaves]
    for did, owners in enumerate(space.door_partitions):
        if len(owners) == 1:
            result[leaf_of[owners[0]]].add(did)
        elif leaf_of[owners[0]] != leaf_of[owners[1]]:
            result[leaf_of[owners[0]]].add(did)
            result[leaf_of[owners[1]]].add(did)
    return [sorted(r) for r in result]


class TestLeaves:
    def test_every_partition_in_exactly_one_leaf(self, fig1_space):
        leaves = build_leaves(fig1_space)
        seen = [pid for leaf in leaves for pid in leaf]
        assert sorted(seen) == list(range(fig1_space.num_partitions))

    def test_rule_ii_one_hallway_per_leaf(self, fig1_space):
        leaves = build_leaves(fig1_space)
        for leaf in leaves:
            hallways = [
                pid
                for pid in leaf
                if fig1_space.category(pid) is PartitionCategory.HALLWAY
            ]
            assert len(hallways) <= 1

    def test_hallways_seed_leaves(self, fig1_space):
        leaves = build_leaves(fig1_space)
        assert len(leaves) == len(fig1_space.fixture_halls)

    def test_rooms_join_adjacent_hallway(self, fig1_space):
        leaves = build_leaves(fig1_space)
        leaf_of = {pid: i for i, leaf in enumerate(leaves) for pid in leaf}
        for h, hall in enumerate(fig1_space.fixture_halls):
            for room in fig1_space.fixture_rooms[h]:
                assert leaf_of[room] == leaf_of[hall]

    def test_access_doors_match_naive(self, fig1_space, tower_space, mall_space):
        for space in (fig1_space, tower_space, mall_space):
            leaves = build_leaves(space)
            assert leaf_access_doors(space, leaves) == naive_access_doors(space, leaves)

    def test_leaf_door_sets_cover_partition_doors(self, fig1_space):
        leaves = build_leaves(fig1_space)
        doorsets = leaf_door_sets(fig1_space, leaves)
        for leaf, doors in zip(leaves, doorsets):
            expected = set()
            for pid in leaf:
                expected.update(fig1_space.partitions[pid].door_ids)
            assert sorted(expected) == doors

    def test_no_hallway_venue_single_leaf(self):
        from repro import IndoorSpaceBuilder

        b = IndoorSpaceBuilder()
        rooms = [b.add_room(floor=0) for _ in range(4)]
        for i in range(3):
            b.add_door(rooms[i], rooms[i + 1], x=float(i), y=0.0)
        b.add_exterior_door(rooms[0], x=-1, y=0)
        leaves = build_leaves(b.build())
        assert leaves == [[0, 1, 2, 3]]


class TestMerging:
    def test_t_below_two_raises(self):
        with pytest.raises(ConstructionError):
            create_next_level([frozenset({1})], frozenset(), t=1)

    def test_merging_reduces_node_count(self):
        ads = [frozenset({0, 1}), frozenset({1, 2}), frozenset({2, 3}), frozenset({3, 0})]
        groups = create_next_level(ads, frozenset(), t=2)
        assert len(groups) < 4
        assert sorted(i for g in groups for i in g) == [0, 1, 2, 3]

    def test_groups_meet_min_degree(self):
        ads = [frozenset({i, i + 1}) for i in range(6)]
        groups = create_next_level(ads, frozenset(), t=3)
        for g in groups:
            assert len(g) >= 3 or len(groups) == 1

    def test_prefers_highest_common_access_doors(self):
        # node 0 shares two doors with node 1, one door with node 2
        ads = [
            frozenset({0, 1, 9}),
            frozenset({0, 1, 8}),
            frozenset({9, 7}),
            frozenset({8, 7}),
        ]
        groups = create_next_level(ads, frozenset(), t=2)
        merged_with_0 = next(g for g in groups if 0 in g)
        assert 1 in merged_with_0

    def test_merged_access_doors_cancels_common(self):
        ads = [frozenset({0, 1}), frozenset({1, 2})]
        assert merged_access_doors(ads, frozenset(), [0, 1]) == frozenset({0, 2})

    def test_merged_access_doors_keeps_exterior(self):
        ads = [frozenset({0, 1}), frozenset({1, 2})]
        assert merged_access_doors(ads, frozenset({1}), [0, 1]) == frozenset({0, 1, 2})

    def test_single_node_passthrough(self):
        assert create_next_level([frozenset({0})], frozenset(), t=2) == [[0]]


class TestDistanceTable:
    def test_set_and_get(self):
        t = DistanceTable([1, 2, 3], [2, 3])
        t.set_entry(1, 2, 5.0, hop=3)
        assert t.distance(1, 2) == 5.0
        assert t.next_hop(1, 2) == 3

    def test_default_entries(self):
        t = DistanceTable([1], [2])
        assert t.distance(1, 2) == float("inf")
        assert t.next_hop(1, 2) == NO_DOOR
        assert not t.is_complete()

    def test_covers(self):
        t = DistanceTable([1, 2], [2])
        assert t.covers(1, 2)
        assert not t.covers(2, 1)

    def test_row_distances(self):
        t = DistanceTable([1], [2, 3])
        t.set_entry(1, 2, 1.0)
        t.set_entry(1, 3, 2.0)
        assert t.row_distances(1) == {2: 1.0, 3: 2.0}

    def test_memory_scales_with_entries(self):
        small = DistanceTable([1], [2]).memory_bytes()
        big = DistanceTable(list(range(10)), list(range(10, 20))).memory_bytes()
        assert big == 100 * small


class TestTreeInvariants:
    @pytest.fixture(scope="class", params=["fig1", "tower", "mall", "office", "campus"])
    def tree(self, request, all_fixture_spaces):
        return IPTree.build(all_fixture_spaces[request.param])

    def test_single_root(self, tree):
        roots = [n for n in tree.nodes if n.parent is None]
        assert [n.nid for n in roots] == [tree.root_id]

    def test_parent_child_consistency(self, tree):
        for node in tree.nodes:
            for cid in node.children:
                assert tree.nodes[cid].parent == node.nid

    def test_leaf_partitions_partition_the_space(self, tree):
        seen = sorted(
            pid for n in tree.nodes if n.is_leaf for pid in n.partitions
        )
        assert seen == list(range(tree.space.num_partitions))

    def test_levels_increase_upward(self, tree):
        for node in tree.nodes:
            for cid in node.children:
                assert tree.nodes[cid].level == node.level - 1

    def test_matrices_complete(self, tree):
        for node in tree.nodes:
            assert node.table is not None
            assert node.table.is_complete()

    def test_access_doors_subset_of_matrix(self, tree):
        for node in tree.nodes:
            if node.is_leaf:
                for a in node.access_doors:
                    assert a in node.table.col_index
                    assert a in node.table.row_index
            else:
                for a in node.access_doors:
                    assert a in node.table.row_index

    def test_matrix_distances_are_exact(self, tree):
        """Core correctness: every stored entry equals the true D2D
        shortest distance (leaf matrices AND level-graph matrices)."""
        for node in tree.nodes:
            table = node.table
            for row in table.row_doors[:6]:
                dist, _ = dijkstra(tree.d2d, row, targets=set(table.col_doors))
                for col in table.col_doors:
                    assert table.distance(row, col) == pytest.approx(
                        dist[col], abs=1e-9
                    )

    def test_chains_reach_root(self, tree):
        for node in tree.nodes:
            if node.is_leaf:
                chain = tree.chain_of_leaf(node.nid)
                assert chain[0] == node.nid
                assert chain[-1] == tree.root_id

    def test_lca_info(self, tree):
        leaves = [n.nid for n in tree.nodes if n.is_leaf]
        if len(leaves) < 2:
            pytest.skip("single-leaf venue")
        lca, ns, nt = tree.lca_info(leaves[0], leaves[-1])
        assert ns in tree.nodes[lca].children
        assert nt in tree.nodes[lca].children
        assert lca in tree.chain_of_leaf(leaves[0])
        assert lca in tree.chain_of_leaf(leaves[-1])

    def test_lca_same_leaf_raises(self, tree):
        leaves = [n.nid for n in tree.nodes if n.is_leaf]
        with pytest.raises(ValueError):
            tree.lca_info(leaves[0], leaves[0])

    def test_stats_fields(self, tree):
        s = tree.stats()
        assert s.num_leaves == sum(1 for n in tree.nodes if n.is_leaf)
        assert s.height == tree.root.level
        assert 0 < s.avg_access_doors <= s.max_access_doors

    def test_memory_positive_and_additive(self, tree):
        assert 0 < tree.memory_bytes() < tree.total_memory_bytes()


class TestMinDegree:
    def test_invalid_t(self, fig1_space):
        with pytest.raises(ConstructionError):
            IPTree.build(fig1_space, t=1)

    def test_higher_t_fewer_levels(self, office_space):
        t2 = IPTree.build(office_space, t=2)
        t4 = IPTree.build(office_space, t=4)
        assert t4.root.level <= t2.root.level

    def test_non_root_nodes_have_min_degree(self, office_space):
        tree = IPTree.build(office_space, t=3)
        for node in tree.nodes:
            if node.nid != tree.root_id and not node.is_leaf:
                assert len(node.children) >= 2  # >= t except isolated fallbacks
