"""Workload generators: determinism, validity, distance bucketing."""

import pytest

from repro.baselines import DijkstraOracle
from repro.datasets import (
    distance_bucketed_pairs,
    random_objects,
    random_pairs,
)
from repro.datasets.workloads import _samplable_partitions, random_point
from repro.model.entities import PartitionKind
from repro.model.geometry import Rect

import random


class TestRandomPoints:
    def test_points_in_valid_partitions(self, mall_space):
        rng = random.Random(1)
        for _ in range(40):
            p = random_point(mall_space, rng)
            part = mall_space.partitions[p.partition_id]
            assert part.kind in (PartitionKind.ROOM, PartitionKind.HALLWAY)

    def test_points_inside_footprints(self, mall_space):
        rng = random.Random(2)
        for _ in range(40):
            p = random_point(mall_space, rng)
            fp = mall_space.partitions[p.partition_id].footprint
            if isinstance(fp, Rect):
                assert fp.contains(p.x, p.y)

    def test_samplable_excludes_connectors(self, tower_space):
        pids = _samplable_partitions(tower_space)
        for pid in pids:
            assert tower_space.partitions[pid].kind in (
                PartitionKind.ROOM,
                PartitionKind.HALLWAY,
            )


class TestRandomPairs:
    def test_count_and_determinism(self, mall_space):
        a = random_pairs(mall_space, 25, seed=4)
        b = random_pairs(mall_space, 25, seed=4)
        assert len(a) == 25
        assert a == b

    def test_seed_variation(self, mall_space):
        assert random_pairs(mall_space, 10, seed=1) != random_pairs(
            mall_space, 10, seed=2
        )


class TestRandomObjects:
    def test_count(self, mall_space):
        objs = random_objects(mall_space, 12, seed=6)
        assert len(objs) == 12

    def test_distinct_partitions_when_possible(self, mall_space):
        objs = random_objects(mall_space, 10, seed=7)
        assert len(objs.partitions()) == 10

    def test_more_objects_than_partitions(self, fig1_space):
        count = fig1_space.num_partitions + 5
        objs = random_objects(fig1_space, count, seed=8)
        assert len(objs) == count

    def test_category_label(self, mall_space):
        objs = random_objects(mall_space, 3, seed=9, category="atm")
        assert all(o.category == "atm" for o in objs)
        assert objs[0].label.startswith("atm-")

    def test_deterministic(self, mall_space):
        a = random_objects(mall_space, 5, seed=10)
        b = random_objects(mall_space, 5, seed=10)
        assert [o.location for o in a] == [o.location for o in b]


class TestDistanceBuckets:
    def test_pairs_fall_in_their_bucket(self, fig1_space, fig1_iptree):
        oracle = DijkstraOracle(fig1_space, fig1_iptree.d2d)
        buckets = distance_bucketed_pairs(
            fig1_space, per_bucket=4, buckets=3, seed=11, d2d=fig1_iptree.d2d
        )
        assert len(buckets) == 3
        from repro.graph.dijkstra import pseudo_diameter

        dmax = pseudo_diameter(fig1_iptree.d2d) * 1.05
        width = dmax / 3
        for i, bucket in enumerate(buckets):
            for s, t in bucket:
                d = oracle.shortest_distance(s, t)
                lo = i * width
                hi = (i + 1) * width if i < 2 else float("inf")
                assert lo - 1e-6 <= d <= hi + 1e-6

    def test_buckets_filled_near_capacity(self, fig1_space, fig1_iptree):
        buckets = distance_bucketed_pairs(
            fig1_space, per_bucket=3, buckets=3, seed=12, d2d=fig1_iptree.d2d
        )
        # middle buckets always fill; extremes may be thin
        assert sum(len(b) for b in buckets) >= 3

    def test_deterministic(self, fig1_space, fig1_iptree):
        a = distance_bucketed_pairs(fig1_space, 2, buckets=2, seed=13, d2d=fig1_iptree.d2d)
        b = distance_bucketed_pairs(fig1_space, 2, buckets=2, seed=13, d2d=fig1_iptree.d2d)
        assert a == b
