"""Unit tests for the graph substrate: adjacency, Dijkstra, D2D, AB."""

import pytest

from repro import DisconnectedVenueError, IndoorSpaceBuilder, build_ab_graph, build_d2d_graph
from repro.graph.adjacency import Graph
from repro.graph.dijkstra import (
    dijkstra,
    dijkstra_first_hops,
    path_from_parents,
    pseudo_diameter,
)
from repro.model.d2d import average_out_degree


class TestGraph:
    def test_add_edge_and_neighbors(self):
        g = Graph(3)
        g.add_edge(0, 1, 2.0)
        assert dict(g.neighbors(0)) == {1: 2.0}
        assert dict(g.neighbors(1)) == {0: 2.0}
        assert g.num_edges == 1

    def test_parallel_edges_keep_minimum(self):
        g = Graph(2)
        g.add_edge(0, 1, 5.0)
        g.add_edge(0, 1, 3.0)
        g.add_edge(0, 1, 9.0)
        assert g.edge_weight(0, 1) == 3.0
        assert g.num_edges == 1

    def test_self_loop_ignored(self):
        g = Graph(2)
        g.add_edge(1, 1, 1.0)
        assert g.num_edges == 0

    def test_negative_weight_raises(self):
        g = Graph(2)
        with pytest.raises(ValueError):
            g.add_edge(0, 1, -1.0)

    def test_edges_iterates_once(self):
        g = Graph(3)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 2.0)
        edges = sorted(g.edges())
        assert edges == [(0, 1, 1.0), (1, 2, 2.0)]

    def test_connected_components(self):
        g = Graph(4)
        g.add_edge(0, 1, 1.0)
        g.add_edge(2, 3, 1.0)
        comps = sorted(sorted(c) for c in g.connected_components())
        assert comps == [[0, 1], [2, 3]]
        assert not g.is_connected()

    def test_empty_graph_is_connected(self):
        assert Graph(0).is_connected()

    def test_subgraph(self):
        g = Graph(4)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 2.0)
        g.add_edge(2, 3, 3.0)
        sub, mapping = g.subgraph([1, 2])
        assert sub.num_vertices == 2
        assert sub.edge_weight(mapping[1], mapping[2]) == 2.0
        assert sub.num_edges == 1

    def test_degree(self):
        g = Graph(3)
        g.add_edge(0, 1, 1.0)
        g.add_edge(0, 2, 1.0)
        assert g.degree(0) == 2 and g.degree(2) == 1


class TestDijkstra:
    def diamond(self):
        # 0 -1- 1 -1- 3 ; 0 -3- 2 -0.5- 3
        g = Graph(4)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 3, 1.0)
        g.add_edge(0, 2, 3.0)
        g.add_edge(2, 3, 0.5)
        return g

    def test_basic_distances(self):
        dist, _ = dijkstra(self.diamond(), 0)
        assert dist == {0: 0.0, 1: 1.0, 3: 2.0, 2: 2.5}

    def test_parents_give_shortest_path(self):
        dist, parent = dijkstra(self.diamond(), 0)
        assert path_from_parents(parent, 0, 3) == [0, 1, 3]

    def test_multi_source_offsets(self):
        dist, _ = dijkstra(self.diamond(), {1: 0.0, 2: 0.0})
        assert dist[3] == 0.5
        assert dist[0] == 1.0

    def test_virtual_source_offsets(self):
        dist, _ = dijkstra(self.diamond(), {0: 10.0, 3: 0.0})
        assert dist[1] == 1.0  # through 3

    def test_negative_offset_raises(self):
        with pytest.raises(ValueError):
            dijkstra(self.diamond(), {0: -1.0})

    def test_targets_early_stop(self):
        dist, _ = dijkstra(self.diamond(), 0, targets={1})
        assert 1 in dist
        assert 2 not in dist  # farther than the last target

    def test_cutoff(self):
        dist, _ = dijkstra(self.diamond(), 0, cutoff=1.5)
        assert set(dist) == {0, 1}

    def test_first_hops(self):
        _, hops = dijkstra_first_hops(self.diamond(), 0)
        assert hops[1] == 1  # direct edge
        assert hops[3] == 1  # via vertex 1

    def test_first_hops_follow_detour(self):
        # shortest to 2 is 0-1-3-2 = 2.5 (< direct 3.0): first hop is 1
        dist, hops = dijkstra_first_hops(self.diamond(), 0)
        assert dist[2] == 2.5
        assert hops[2] == 1

    def test_pseudo_diameter(self):
        g = Graph(4)
        for i in range(3):
            g.add_edge(i, i + 1, 1.0)
        assert pseudo_diameter(g) == pytest.approx(3.0)

    def test_path_from_parents_missing_target(self):
        _, parent = dijkstra(self.diamond(), 0, targets={1})
        with pytest.raises(KeyError):
            path_from_parents(parent, 0, 2)


class TestD2DGraph:
    def test_clique_per_partition(self, fig1_space):
        g = build_d2d_graph(fig1_space)
        for hall in fig1_space.fixture_halls:
            doors = fig1_space.partitions[hall].door_ids
            for i in range(len(doors)):
                for j in range(i + 1, len(doors)):
                    assert g.has_edge(doors[i], doors[j])

    def test_edge_weights_match_metric(self, fig1_space):
        g = build_d2d_graph(fig1_space)
        hall = fig1_space.fixture_halls[0]
        d1, d2 = fig1_space.partitions[hall].door_ids[:2]
        assert g.edge_weight(d1, d2) == pytest.approx(
            fig1_space.partition_door_distance(hall, d1, d2)
        )

    def test_disconnected_raises(self):
        b = IndoorSpaceBuilder()
        a, c = b.add_room(), b.add_room()
        b.add_exterior_door(a, 0, 0)
        b.add_exterior_door(c, 9, 9)
        space = b.build()
        with pytest.raises(DisconnectedVenueError):
            build_d2d_graph(space)
        g = build_d2d_graph(space, require_connected=False)
        assert g.num_edges == 0

    def test_shared_door_weight_is_minimum_over_partitions(self):
        # a door shared by two partitions contributes edges via both
        b = IndoorSpaceBuilder()
        a, c = b.add_room(floor=0), b.add_room(floor=0)
        b.add_door(a, c, x=0, y=0)
        b.add_door(a, c, x=5, y=0)
        space = b.build()
        g = build_d2d_graph(space)
        assert g.edge_weight(0, 1) == pytest.approx(5.0)

    def test_average_out_degree(self):
        g = Graph(4)
        g.add_edge(0, 1, 1.0)
        g.add_edge(0, 2, 1.0)
        assert average_out_degree(g) == pytest.approx(1.0)


class TestABGraph:
    def test_interior_doors_become_edges(self, fig1_space):
        ab = build_ab_graph(fig1_space)
        halls = fig1_space.fixture_halls
        neighbors = {p for p, _ in ab.neighbors(halls[0])}
        assert halls[1] in neighbors

    def test_parallel_door_edges_kept(self):
        b = IndoorSpaceBuilder()
        a, c = b.add_room(), b.add_room()
        b.add_door(a, c, x=0, y=0)
        b.add_door(a, c, x=1, y=0)
        ab = build_ab_graph(b.build())
        assert ab.degree(0) == 2
        assert ab.edge_count() == 2

    def test_exterior_doors_listed(self, fig1_space):
        ab = build_ab_graph(fig1_space)
        exts = [d for lst in ab.exterior_doors for d in lst]
        assert len(exts) == 2

    def test_edge_count_matches_interior_doors(self, fig1_space):
        ab = build_ab_graph(fig1_space)
        interior = sum(
            1 for owners in fig1_space.door_partitions if len(owners) == 2
        )
        assert ab.edge_count() == interior
