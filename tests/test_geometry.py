"""Unit tests for geometric primitives."""

import math
import random

import pytest

from repro.model.geometry import DEFAULT_FLOOR_HEIGHT, Point, Rect, euclidean


class TestPoint:
    def test_planar_distance(self):
        assert Point(0, 0).planar_distance(Point(3, 4)) == pytest.approx(5.0)

    def test_planar_distance_ignores_floor(self):
        assert Point(0, 0, 5).planar_distance(Point(3, 4, 0)) == pytest.approx(5.0)

    def test_distance_same_floor(self):
        assert Point(1, 2, 1).distance(Point(4, 6, 1)) == pytest.approx(5.0)

    def test_distance_across_floors_uses_floor_height(self):
        d = Point(0, 0, 0).distance(Point(0, 0, 1), floor_height=4.0)
        assert d == pytest.approx(4.0)

    def test_distance_custom_floor_height(self):
        d = Point(0, 0, 0).distance(Point(3, 0, 1), floor_height=4.0)
        assert d == pytest.approx(5.0)

    def test_distance_default_floor_height(self):
        d = Point(0, 0, 0).distance(Point(0, 0, 2))
        assert d == pytest.approx(2 * DEFAULT_FLOOR_HEIGHT)

    def test_translated(self):
        p = Point(1, 2, 0).translated(dx=1, dy=-2, dfloor=3)
        assert (p.x, p.y, p.floor) == (2, 0, 3)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Point(0, 0).x = 5  # type: ignore[misc]

    def test_euclidean_helper(self):
        assert euclidean(Point(0, 0), Point(3, 4)) == pytest.approx(5.0)

    def test_distance_symmetric(self):
        a, b = Point(1, 7, 2), Point(-3, 0, 1)
        assert a.distance(b) == pytest.approx(b.distance(a))

    def test_triangle_inequality(self):
        a, b, c = Point(0, 0, 0), Point(5, 1, 1), Point(2, 9, 2)
        assert a.distance(c) <= a.distance(b) + b.distance(c) + 1e-12


class TestRect:
    def test_dimensions(self):
        r = Rect(1, 2, 5, 10)
        assert r.width == 4 and r.height == 8 and r.area == 32

    def test_center(self):
        assert Rect(0, 0, 4, 2).center == (2.0, 1.0)

    def test_contains_interior_and_boundary(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains(1, 1)
        assert r.contains(0, 0)
        assert r.contains(2, 2)
        assert not r.contains(2.1, 1)

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            Rect(5, 0, 1, 2)

    def test_zero_area_allowed(self):
        r = Rect(1, 1, 1, 1)
        assert r.area == 0

    def test_sample_inside(self):
        r = Rect(2, 3, 7, 9)
        rng = random.Random(3)
        for _ in range(50):
            x, y = r.sample(rng)
            assert r.contains(x, y)

    def test_sample_deterministic(self):
        r = Rect(0, 0, 10, 10)
        assert r.sample(random.Random(1)) == r.sample(random.Random(1))

    def test_translated(self):
        r = Rect(0, 0, 2, 2).translated(dx=3, dy=-1)
        assert (r.x_min, r.y_min, r.x_max, r.y_max) == (3, -1, 5, 1)


class TestMetricProperties:
    def test_zero_distance(self):
        p = Point(3.7, -2.0, 1.0)
        assert p.distance(p) == 0.0

    def test_distance_is_3d_euclidean(self):
        a = Point(1, 2, 0)
        b = Point(4, 6, 2)
        expected = math.sqrt(3**2 + 4**2 + (2 * DEFAULT_FLOOR_HEIGHT) ** 2)
        assert a.distance(b) == pytest.approx(expected)
