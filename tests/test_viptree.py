"""VIP-Tree internals: materialization, O(αρ) lookups, storage."""

import pytest

from repro import IPTree, VIPTree
from repro.core.query_distance import Endpoint
from repro.core.viptree import VIA_BASE, VIA_SELF
from repro.graph.dijkstra import dijkstra

from repro.testing import sample_points


@pytest.fixture(scope="module", params=["fig1", "tower", "office"])
def vip(request, all_fixture_spaces):
    return VIPTree.build(all_fixture_spaces[request.param])


class TestMaterialization:
    def test_covers_all_ancestor_access_doors(self, vip):
        for door in range(vip.space.num_doors):
            store = vip.vip_store[door]
            for leaf_id in vip.leaf_nodes_of_door[door]:
                for nid in vip.chain_of_leaf(leaf_id):
                    for a in vip.nodes[nid].access_doors:
                        assert a in store, (door, nid, a)

    def test_distances_exact(self, vip):
        step = max(1, vip.space.num_doors // 8)
        for door in range(0, vip.space.num_doors, step):
            store = vip.vip_store[door]
            if not store:
                continue
            dist, _ = dijkstra(vip.d2d, door, targets=set(store))
            for a, (d, _via) in store.items():
                assert d == pytest.approx(dist[a], abs=1e-9)

    def test_via_sentinels_valid(self, vip):
        for door in range(vip.space.num_doors):
            for a, (_d, via) in vip.vip_store[door].items():
                assert via in (VIA_BASE, VIA_SELF) or 0 <= via < vip.space.num_doors
                if via >= 0:
                    # the via door is itself materialized for this door
                    assert via in vip.vip_store[door]

    def test_leaf_access_doors_are_base(self, vip):
        # For single-leaf doors the leaf's access doors must carry the
        # BASE sentinel; two-leaf doors may have picked up an equivalent
        # via entry while climbing the first leaf's chain (the distance
        # is identical and still decomposable, see decompose_to tests).
        for door in range(vip.space.num_doors):
            leaves = vip.leaf_nodes_of_door[door]
            if len(leaves) != 1:
                continue
            store = vip.vip_store[door]
            for a in vip.nodes[leaves[0]].access_doors:
                assert store[a][1] == VIA_BASE

    def test_self_distance_zero(self, vip):
        for door in range(vip.space.num_doors):
            store = vip.vip_store[door]
            if door in store:
                assert store[door][0] == 0.0


class TestEndpointDistances:
    def test_matches_iptree_algorithm2(self, vip, all_fixture_spaces):
        """VIP's O(αρ) lookup returns the same values as IP's climb."""
        space = vip.space
        ip = IPTree.build(space, d2d=vip.d2d)
        for q in sample_points(space, 6, seed=50):
            ep_vip = Endpoint(vip, q)
            ep_ip = Endpoint(ip, q)
            known_vip, _, _ = vip.endpoint_distances(ep_vip, vip.root_id)
            known_ip, _, _ = ip.endpoint_distances(ep_ip, ip.root_id)
            # tree shapes are identical (same build inputs)
            assert set(known_vip) == set(known_ip)
            for a in known_vip:
                assert known_vip[a] == pytest.approx(known_ip[a], abs=1e-9)

    def test_collect_chain_snapshots(self, vip):
        q = sample_points(vip.space, 1, seed=51)[0]
        ep = Endpoint(vip, q)
        leaf = ep.leaves[0]
        _, _, chain_map = vip.endpoint_distances(
            ep, vip.root_id, leaf_id=leaf, collect_chain=True
        )
        assert set(chain_map) == set(vip.chain_of_leaf(leaf))
        for nid, dists in chain_map.items():
            assert set(dists) == set(vip.nodes[nid].access_doors)


class TestStorage:
    def test_vip_memory_exceeds_ip(self, vip):
        ip = IPTree.build(vip.space, d2d=vip.d2d)
        assert vip.memory_bytes() > ip.memory_bytes()

    def test_store_size_matches_complexity(self, vip):
        """O(rho * D * log M): every door's store is bounded by the chain
        length times the max access doors per node (for both leaves)."""
        stats = vip.stats()
        height = stats.height
        bound = 2 * height * stats.max_access_doors + 2
        for door in range(vip.space.num_doors):
            assert len(vip.vip_store[door]) <= bound

    def test_index_name(self, vip):
        assert vip.index_name == "VIP-Tree"
        assert IPTree.build(vip.space, d2d=vip.d2d).index_name == "IP-Tree"
