"""Admission control: token-bucket conservation, depth shedding, and
starved-venue isolation — property-tested over adversarial arrival
schedules.

The controller's contract is small but must hold for *every* schedule:

* **Conservation** — over any window of ``t`` seconds a venue admits at
  most ``burst + rate * t`` requests; a shed request consumes nothing.
* **Exclusivity** — a request is rejected xor answered, never both
  (``admitted + rejected`` accounts for every arrival exactly once).
* **Depth bound** — in-flight never exceeds ``max_queue_depth``.
* **Isolation** — a venue flooding its own allowance cannot push a
  polite venue's latency: in a simulated queueing model, the polite
  venue's p99 stays within a small factor of its uncontended p99
  while the pathological venue is shed.

Time is injected (the controller takes a ``clock``), so schedules are
deterministic and instant — no sleeps, no flaky wall-clock margins.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import OverloadedError
from repro.obs import MetricsRegistry
from repro.serving import AdmissionController, TokenBucket

COMMON = dict(max_examples=100, deadline=None)


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# Strategies: arrival schedules over a handful of venues
# ----------------------------------------------------------------------
VENUES = ["aaaa1111", "bbbb2222", "cccc3333"]

arrivals = st.lists(
    st.tuples(
        st.sampled_from(VENUES),
        st.floats(min_value=0.0, max_value=0.5,
                  allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=200,
)


# ----------------------------------------------------------------------
# Token bucket unit properties
# ----------------------------------------------------------------------
@settings(**COMMON)
@given(
    rate=st.floats(min_value=0.5, max_value=100.0),
    burst=st.floats(min_value=1.0, max_value=50.0),
    gaps=st.lists(st.floats(min_value=0.0, max_value=2.0), min_size=1,
                  max_size=200),
)
def test_token_bucket_conservation(rate, burst, gaps):
    """Over any schedule, acquisitions <= burst + rate * elapsed (with
    float slack): the bound that makes shedding mean something."""
    bucket = TokenBucket(rate, burst, now=0.0)
    now = 0.0
    acquired = 0
    for gap in gaps:
        now += gap
        if bucket.try_acquire(now) == 0.0:
            acquired += 1
    assert acquired <= math.floor(burst + rate * now) + 1


@settings(**COMMON)
@given(
    rate=st.floats(min_value=0.5, max_value=100.0),
    burst=st.floats(min_value=1.0, max_value=50.0),
    drains=st.integers(min_value=1, max_value=100),
)
def test_token_bucket_retry_after_is_honest(rate, burst, drains):
    """After a rejection, waiting exactly the advertised horizon (plus
    float slack) admits the next request."""
    bucket = TokenBucket(rate, burst, now=0.0)
    now = 0.0
    for _ in range(drains):
        bucket.try_acquire(now)
    retry_after = bucket.try_acquire(now)
    if retry_after == 0.0:
        return  # burst still had room: nothing to verify
    assert retry_after > 0.0
    assert bucket.try_acquire(now + retry_after + 1e-9) == 0.0


def test_token_bucket_ignores_backwards_clock():
    bucket = TokenBucket(1.0, 1.0, now=100.0)
    assert bucket.try_acquire(100.0) == 0.0
    # A clock that steps backwards must not mint tokens.
    assert bucket.try_acquire(50.0) > 0.0
    assert bucket.tokens == pytest.approx(0.0)


# ----------------------------------------------------------------------
# Controller properties over multi-venue schedules
# ----------------------------------------------------------------------
@settings(**COMMON)
@given(
    schedule=arrivals,
    rate=st.floats(min_value=0.5, max_value=50.0),
    burst=st.floats(min_value=1.0, max_value=20.0),
)
def test_rejected_xor_answered_and_conservation(schedule, rate, burst):
    """Every arrival is admitted xor rejected (never both, never
    neither), and per-venue admissions respect the bucket bound."""
    clock = FakeClock()
    controller = AdmissionController(rate=rate, burst=burst, clock=clock)
    outcomes = {v: {"admitted": 0, "rejected": 0} for v in VENUES}
    first_seen: dict[str, float] = {}
    for venue, gap in schedule:
        clock.advance(gap)
        first_seen.setdefault(venue, clock.now)
        try:
            controller.admit(venue)
        except OverloadedError as exc:
            outcomes[venue]["rejected"] += 1
            assert exc.retry_after is not None and exc.retry_after > 0.0
        else:
            outcomes[venue]["admitted"] += 1
            controller.release(venue)  # settle instantly: depth unbounded
    for venue in VENUES:
        stats = controller.stats(venue)
        # exclusivity: the controller accounts for every arrival once
        assert stats.admitted == outcomes[venue]["admitted"]
        assert stats.rejected == outcomes[venue]["rejected"]
        total = stats.admitted + stats.rejected
        assert total == outcomes[venue]["admitted"] + outcomes[venue]["rejected"]
        # conservation: admitted <= burst + rate * elapsed (float slack)
        if venue in first_seen:
            elapsed = clock.now - first_seen[venue]
            assert stats.admitted <= math.floor(burst + rate * elapsed) + 1


@settings(**COMMON)
@given(
    schedule=arrivals,
    depth=st.integers(min_value=1, max_value=8),
    release_every=st.integers(min_value=2, max_value=5),
)
def test_queue_depth_never_exceeds_bound(schedule, depth, release_every):
    """With only sporadic releases, in-flight never passes the bound,
    and depth rejections carry no retry hint (there is no horizon)."""
    clock = FakeClock()
    controller = AdmissionController(max_queue_depth=depth, clock=clock)
    in_flight = {v: 0 for v in VENUES}
    for i, (venue, gap) in enumerate(schedule):
        clock.advance(gap)
        try:
            controller.admit(venue)
        except OverloadedError as exc:
            assert exc.retry_after is None
            assert in_flight[venue] == depth
        else:
            in_flight[venue] += 1
        assert controller.depth(venue) == in_flight[venue] <= depth
        if i % release_every == 0 and in_flight[venue] > 0:
            controller.release(venue)
            in_flight[venue] -= 1


@settings(**COMMON)
@given(flood=st.integers(min_value=10, max_value=500))
def test_pathological_venue_cannot_starve_polite_one(flood):
    """Simulated queueing: a flooding venue gets shed at its bound
    while a polite venue's p99 stays within 3x its uncontended p99.

    Latency model: a request's simulated latency is
    ``(depth at admission) * service_time`` — exactly the queueing
    delay a bounded in-flight window imposes. Without shedding the
    flooder would drive everyone's depth (and so p99) unbounded; with
    it, the polite venue's admissions see only its own tiny depth.
    """
    service = 0.001
    clock = FakeClock()
    controller = AdmissionController(max_queue_depth=4, clock=clock)
    flooder, polite = VENUES[0], VENUES[1]

    def uncontended_p99():
        lat = []
        for _ in range(100):
            controller.admit(polite)
            lat.append(max(1, controller.depth(polite)) * service)
            controller.release(polite)
        lat.sort()
        return lat[98]

    baseline = uncontended_p99()
    # The flood: the pathological venue hammers without releasing.
    shed = 0
    for _ in range(flood):
        try:
            controller.admit(flooder)
        except OverloadedError:
            shed += 1
    assert controller.depth(flooder) <= 4
    assert shed == max(0, flood - 4)  # everything over the bound is shed
    # The polite venue, mid-flood, still sees its uncontended latency.
    contended = uncontended_p99()
    assert contended <= 3.0 * baseline


# ----------------------------------------------------------------------
# Configuration and observability
# ----------------------------------------------------------------------
def test_controller_requires_a_policy():
    with pytest.raises(ValueError, match="needs a policy"):
        AdmissionController()
    with pytest.raises(ValueError, match="burst without rate"):
        AdmissionController(burst=4.0, max_queue_depth=2)
    with pytest.raises(ValueError, match="rate must be"):
        AdmissionController(rate=0.0)
    with pytest.raises(ValueError, match="max_queue_depth"):
        AdmissionController(max_queue_depth=0)


def test_release_without_admit_is_a_bug():
    controller = AdmissionController(max_queue_depth=2)
    with pytest.raises(ValueError, match="release without a matching admit"):
        controller.release("nobody")


def test_burst_defaults_to_twice_rate():
    controller = AdmissionController(rate=5.0)
    assert controller.burst == 10.0
    assert AdmissionController(rate=0.25).burst == 1.0  # floored


def test_rejections_are_exported_to_the_registry():
    clock = FakeClock()
    registry = MetricsRegistry()
    controller = AdmissionController(
        rate=1.0, burst=1.0, max_queue_depth=1,
        registry=registry, clock=clock,
    )
    venue = "deadbeefcafe0123"
    controller.admit(venue)  # takes the only token, holds the only slot
    with pytest.raises(OverloadedError):
        controller.admit(venue)  # depth rejection
    controller.release(venue)
    with pytest.raises(OverloadedError):
        controller.admit(venue)  # rate rejection (bucket empty)
    snapshot = registry.snapshot()
    counters = {
        (c["name"], tuple(sorted(c["labels"].items()))): c["value"]
        for c in snapshot["counters"].values()
    }
    label = venue[:12]
    assert counters[("admission_admitted_total",
                     (("venue", label),))] == 1
    assert counters[("admission_rejected_total",
                     (("reason", "depth"), ("venue", label)))] == 1
    assert counters[("admission_rejected_total",
                     (("reason", "rate"), ("venue", label)))] == 1


def test_stats_by_venue_round_trips():
    clock = FakeClock()
    controller = AdmissionController(max_queue_depth=1, clock=clock)
    controller.admit("v1")
    with pytest.raises(OverloadedError):
        controller.admit("v1")
    docs = controller.stats_by_venue()
    assert docs["v1"] == {
        "admitted": 1, "rejected_rate": 0, "rejected_depth": 1,
        "rejected": 1, "in_flight": 1,
    }


# ----------------------------------------------------------------------
# Idle eviction: venue churn must not grow the controller unboundedly
# ----------------------------------------------------------------------
class TestIdleEviction:
    def _venue_count(self, controller) -> int:
        return len(controller._venues)

    def test_idle_venues_evicted_past_horizon(self):
        clock = FakeClock()
        controller = AdmissionController(
            rate=10.0, max_queue_depth=4, idle_timeout=60.0, clock=clock,
        )
        for i in range(50):
            venue = f"venue-{i:04d}"
            controller.admit(venue)
            controller.release(venue)
            clock.advance(1.0)
        # 50 venues seen over 50s; none idle past 60s yet
        assert self._venue_count(controller) == 50
        clock.advance(120.0)
        # activity on one venue triggers the amortized sweep and
        # evicts everything idle past the horizon
        controller.admit("fresh")
        controller.release("fresh")
        assert self._venue_count(controller) == 1
        assert controller.depth("venue-0000") == 0  # unseen again: zeros

    def test_in_flight_venues_survive_eviction(self):
        clock = FakeClock()
        controller = AdmissionController(
            max_queue_depth=4, idle_timeout=10.0, clock=clock,
        )
        controller.admit("busy")       # stays in flight across the horizon
        controller.admit("quiet")
        controller.release("quiet")
        clock.advance(1000.0)
        assert controller.evict_idle() == 1  # only "quiet" goes
        assert self._venue_count(controller) == 1
        controller.release("busy")     # release obligation still honoured
        assert controller.depth("busy") == 0

    def test_evicted_venue_restarts_with_full_bucket(self):
        clock = FakeClock()
        controller = AdmissionController(
            rate=1.0, burst=2.0, idle_timeout=5.0, clock=clock,
        )
        controller.admit("v")
        controller.admit("v")  # bucket drained
        with pytest.raises(OverloadedError):
            controller.admit("v")
        controller.release("v")
        controller.release("v")
        clock.advance(100.0)
        assert controller.evict_idle() == 1
        # fresh state: the full burst is available again immediately
        controller.admit("v")
        controller.admit("v")

    def test_sweep_is_amortized_not_per_admit(self):
        clock = FakeClock()
        controller = AdmissionController(
            max_queue_depth=4, idle_timeout=100.0, clock=clock,
        )
        controller.admit("old")
        controller.release("old")
        clock.advance(150.0)  # "old" is now idle past the horizon
        controller.admit("a")  # first admit past _next_sweep: sweeps
        assert "old" not in controller._venues
        next_sweep = controller._next_sweep
        controller.admit("b")  # within the sweep window: no new sweep
        assert controller._next_sweep == next_sweep

    def test_no_timeout_keeps_every_venue(self):
        clock = FakeClock()
        controller = AdmissionController(max_queue_depth=1, clock=clock)
        for i in range(20):
            venue = f"venue-{i}"
            controller.admit(venue)
            controller.release(venue)
            clock.advance(10_000.0)
        assert controller.evict_idle() == 0
        assert self._venue_count(controller) == 20

    def test_invalid_idle_timeout_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(max_queue_depth=1, idle_timeout=0.0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue_depth=1, idle_timeout=-5.0)
