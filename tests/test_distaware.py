"""DistAw / DistAw++ baselines vs the oracle."""

import pytest

from repro.baselines import DijkstraOracle, DistAwPlusPlus, DistAware

from repro.testing import sample_points


@pytest.fixture(scope="module")
def aw(tower_space, tower_iptree):
    return DistAware(tower_space, tower_iptree.d2d)


@pytest.fixture(scope="module")
def objects(tower_space):
    from repro.datasets import random_objects

    return random_objects(tower_space, 7, seed=19)


class TestDistances:
    def test_matches_oracle(self, aw, tower_space, tower_oracle):
        pts = sample_points(tower_space, 12, seed=71)
        for s, t in zip(pts[:6], pts[6:]):
            assert aw.shortest_distance(s, t) == pytest.approx(
                tower_oracle.shortest_distance(s, t), abs=1e-9
            )

    def test_door_endpoints(self, aw, tower_space, tower_oracle):
        n = tower_space.num_doors
        for da, db in ((0, n - 1), (1, n // 2), (n // 3, n // 3)):
            assert aw.shortest_distance(da, db) == pytest.approx(
                tower_oracle.shortest_distance(da, db), abs=1e-9
            )

    def test_shortest_path_valid(self, aw, tower_space, tower_oracle):
        pts = sample_points(tower_space, 8, seed=72)
        for s, t in zip(pts[:4], pts[4:]):
            d, doors = aw.shortest_path(s, t)
            assert d == pytest.approx(tower_oracle.shortest_distance(s, t), abs=1e-9)
            for x, y in zip(doors, doors[1:]):
                assert aw.d2d.has_edge(x, y)


class TestObjectQueries:
    def test_requires_attach(self, aw):
        fresh = DistAware(aw.space, aw.d2d)
        with pytest.raises(RuntimeError):
            fresh.knn(0, 1)

    def test_knn_matches_oracle(self, aw, objects, tower_space, tower_oracle):
        aw.attach_objects(objects)
        for q in sample_points(tower_space, 6, seed=73):
            got = aw.knn(q, 3)
            expected = tower_oracle.knn(q, objects, 3)
            assert [round(d, 8) for d, _ in got] == pytest.approx(
                [round(d, 8) for d, _ in expected], abs=1e-7
            )

    def test_knn_sorted_by_distance(self, aw, objects, tower_space):
        aw.attach_objects(objects)
        q = sample_points(tower_space, 1, seed=74)[0]
        res = aw.knn(q, 5)
        dists = [d for d, _ in res]
        assert dists == sorted(dists)

    def test_range_matches_oracle(self, aw, objects, tower_space, tower_oracle):
        aw.attach_objects(objects)
        for q in sample_points(tower_space, 6, seed=75):
            got = {(round(d, 8), i) for d, i in aw.range_query(q, 20.0)}
            expected = {
                (round(d, 8), i)
                for d, i in tower_oracle.range_query(q, objects, 20.0)
            }
            assert got == expected

    def test_memory_accounts_for_augmentation(self, aw, objects):
        base = DistAware(aw.space, aw.d2d).memory_bytes()
        aw.attach_objects(objects)
        assert aw.memory_bytes() >= base


class TestDistAwPlusPlus:
    def test_distance_same_as_distaw(self, tower_space, tower_iptree, tower_oracle):
        pp = DistAwPlusPlus(tower_space, tower_iptree.d2d)
        pts = sample_points(tower_space, 6, seed=76)
        for s, t in zip(pts[:3], pts[3:]):
            assert pp.shortest_distance(s, t) == pytest.approx(
                tower_oracle.shortest_distance(s, t), abs=1e-9
            )

    def test_knn_uses_matrix(self, tower_space, tower_iptree, tower_oracle, objects):
        pp = DistAwPlusPlus(tower_space, tower_iptree.d2d)
        pp.attach_objects(objects)
        for q in sample_points(tower_space, 5, seed=77):
            got = pp.knn(q, 3)
            expected = tower_oracle.knn(q, objects, 3)
            assert [round(d, 8) for d, _ in got] == pytest.approx(
                [round(d, 8) for d, _ in expected], abs=1e-7
            )

    def test_requires_attach(self, tower_space, tower_iptree):
        pp = DistAwPlusPlus(tower_space, tower_iptree.d2d)
        with pytest.raises(RuntimeError):
            pp.knn(0, 1)

    def test_memory_exceeds_distaw(self, tower_space, tower_iptree):
        aw = DistAware(tower_space, tower_iptree.d2d)
        pp = DistAwPlusPlus(tower_space, tower_iptree.d2d)
        assert pp.memory_bytes() > aw.memory_bytes()

    def test_index_names(self, tower_space, tower_iptree):
        assert DistAware(tower_space, tower_iptree.d2d).index_name == "DistAw"
        assert (
            DistAwPlusPlus(tower_space, tower_iptree.d2d).index_name == "DistAw++"
        )
