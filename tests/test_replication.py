"""Replication end to end: log-tailing replicas, ring placement,
failover and elasticity under injected faults.

The tentpole guarantee — killing a primary mid-update-stream loses
zero acknowledged updates — is proved the only way that means
anything: every scenario recovers a cluster (or router) from a fault
staged by :class:`repro.testing.ClusterFaultHarness` and asserts its
answers element-wise equal to a sequential replay of exactly the
acknowledged operations.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.datasets import (
    build_mall,
    build_office,
    multi_venue_streams,
    random_objects,
    random_point,
)
from repro.exceptions import ServingError
from repro.model.objects import UpdateOp
from repro.serving import (
    ClusterFrontend,
    HashRing,
    Request,
    ShardProcess,
    VenueRouter,
    concurrent_replay,
    sequential_replay,
)
from repro.serving.protocol import result_to_doc
from repro.storage import SnapshotCatalog

# Real child processes + sockets: wedges fail fast with a stack dump.
pytestmark = pytest.mark.net_guard
from repro.testing import (
    ClusterFaultHarness,
    corrupt_oplog_tail,
    tear_oplog_tail,
    venue_oplog_path,
    wait_until,
)


def insert_op(space, rng):
    return UpdateOp(kind="insert", location=random_point(space, rng),
                    label="cart", category="cart")


def apply_all(router, vid, ops):
    return [router.execute(Request(venue=vid, kind="update", op=op))
            for op in ops]


def answers(execute, vid, probes, k=3):
    """knn + range answer documents for each probe, via ``execute``
    (a router's ``execute`` or a cluster's blocking submit)."""
    docs = []
    for probe in probes:
        docs.append(result_to_doc(execute(
            Request(venue=vid, kind="knn", source=probe, k=k))))
        docs.append(result_to_doc(execute(
            Request(venue=vid, kind="range", source=probe, radius=40.0))))
    return docs


def cluster_execute(cluster):
    return lambda request: cluster.submit(request).result(timeout=60.0)


def baseline_router(tmp_path, space, objects_seed, n_objects=10):
    """A fresh sequential router over its own catalog — the oracle
    every recovered cluster is compared against."""
    router = VenueRouter(SnapshotCatalog(tmp_path / "baseline"))
    vid = router.add_venue(
        space, objects=random_objects(space, n_objects, seed=objects_seed))
    return router, vid


# ----------------------------------------------------------------------
# Replicated replay equivalence (the read path through replicas)
# ----------------------------------------------------------------------
class TestReplicatedReplay:
    def test_factor2_concurrent_replay_matches_sequential(self, tmp_path):
        mall = build_mall("tiny", name="repl-mall")
        office = build_office("tiny", name="repl-office")
        venues = [(mall, random_objects(mall, 10, seed=41)),
                  (office, random_objects(office, 8, seed=42))]
        streams = multi_venue_streams(venues, 40, update_ratio=0.4,
                                      churn=0.2, seed=43)
        local = VenueRouter(SnapshotCatalog(tmp_path / "seq"), capacity=4)
        ids = [local.add_venue(s, objects=o) for s, o in venues]
        keyed = dict(zip(ids, streams))
        sequential, _ = sequential_replay(local, keyed)

        with ClusterFrontend(tmp_path / "cluster", shards=3,
                             replication=2) as cluster:
            for s, seed in ((mall, 41), (office, 42)):
                cluster.add_venue(s, objects=random_objects(
                    s, 10 if s is mall else 8, seed=seed))
            for vid in ids:
                placement = cluster.placement(vid)
                assert len(placement) == 2 and len(set(placement)) == 2
            clustered, _ = concurrent_replay(cluster, keyed)
            assert cluster.stats().replication == 2
        for vid in ids:
            assert len(sequential[vid]) == len(clustered[vid])
            for a, b in zip(sequential[vid], clustered[vid]):
                assert result_to_doc(a) == result_to_doc(b)

    def test_replica_tails_the_log_and_serves_fresh_reads(self, tmp_path):
        space = build_mall("tiny", name="tail-mall")
        rng = random.Random(7)
        ops = [insert_op(space, rng) for _ in range(6)]
        probes = [random_point(space, random.Random(50 + i)) for i in range(3)]
        local, lvid = baseline_router(tmp_path, space, objects_seed=51)
        apply_all(local, lvid, ops)
        expected = answers(local.execute, lvid, probes)

        with ClusterFrontend(tmp_path / "cluster", shards=2,
                             replication=2, flush_interval=0) as cluster:
            vid = cluster.add_venue(
                space, objects=random_objects(space, 10, seed=51))
            for op in ops:
                cluster.submit(Request(venue=vid, kind="update",
                                       op=op)).result(timeout=60.0)
            # read rotation covers primary and replica: ask everything
            # twice so *both* copies must produce the baseline answers —
            # the replica only can by tailing the log it never wrote.
            first = answers(cluster_execute(cluster), vid, probes)
            second = answers(cluster_execute(cluster), vid, probes)
            assert first == expected and second == expected
            assert cluster.stats().promotions == 0

            # both copies report the same log position for the venue
            positions = [s["log_positions"].get(vid)
                         for s in cluster.shard_stats()]
            assert len(positions) == 2
            assert positions[0] is not None and positions[0] == positions[1]


# ----------------------------------------------------------------------
# Failover: the tentpole acceptance scenario
# ----------------------------------------------------------------------
class TestPrimaryFailover:
    def test_primary_killed_mid_update_stream_loses_zero_acked_updates(
            self, tmp_path):
        space = build_mall("tiny", name="failover-mall")
        rng = random.Random(11)
        ops = [insert_op(space, rng) for _ in range(18)]
        probes = [random_point(space, random.Random(80 + i)) for i in range(4)]

        with ClusterFrontend(tmp_path / "cluster", shards=3, replication=2,
                             flush_interval=0) as cluster:
            vid = cluster.add_venue(
                space, objects=random_objects(space, 10, seed=61))
            harness = ClusterFaultHarness(cluster)
            primary = harness.primary_of(vid)
            acked = []
            for op in ops[:10]:
                acked.append(cluster.submit(
                    Request(venue=vid, kind="update", op=op)
                ).result(timeout=60.0))
            # two more updates serve normally, then the primary dies
            # mid-stream — before applying or acking the third
            harness.crash_after_updates(primary, 2)
            for op in ops[10:]:
                acked.append(harness.apply_update(vid, op))
            assert wait_until(lambda: cluster.stats().promotions >= 1)
            assert harness.primary_of(vid) != primary

            # zero acknowledged updates lost: the promoted replica's
            # answers (and the acks themselves) are element-wise equal
            # to a sequential replay of every acked op
            local, lvid = baseline_router(tmp_path, space, objects_seed=61)
            assert acked == apply_all(local, lvid, ops)
            assert (answers(cluster_execute(cluster), vid, probes)
                    == answers(local.execute, lvid, probes))
            # and the promoted primary accepts further updates
            extra = insert_op(space, rng)
            assert (cluster.submit(Request(venue=vid, kind="update",
                                           op=extra)).result(timeout=60.0)
                    == local.execute(Request(venue=lvid, kind="update",
                                             op=extra)))

    def test_partitioned_primary_fails_over_too(self, tmp_path):
        space = build_mall("tiny", name="partition-mall")
        rng = random.Random(13)
        ops = [insert_op(space, rng) for _ in range(8)]
        probes = [random_point(space, random.Random(90))]

        with ClusterFrontend(tmp_path / "cluster", shards=3, replication=2,
                             flush_interval=0) as cluster:
            vid = cluster.add_venue(
                space, objects=random_objects(space, 8, seed=71))
            harness = ClusterFaultHarness(cluster)
            acked = [cluster.submit(Request(venue=vid, kind="update", op=op)
                                    ).result(timeout=60.0) for op in ops[:4]]
            harness.partition(harness.primary_of(vid))
            acked += [harness.apply_update(vid, op) for op in ops[4:]]
            assert cluster.stats().promotions == 1

            local, lvid = baseline_router(tmp_path, space, objects_seed=71,
                                          n_objects=8)
            assert acked == apply_all(local, lvid, ops)
            assert (answers(cluster_execute(cluster), vid, probes)
                    == answers(local.execute, lvid, probes))


class TestReplicaFailure:
    def test_replica_killed_mid_read_stream_reads_continue(self, tmp_path):
        space = build_office("tiny", name="replica-office")
        rng = random.Random(17)
        ops = [insert_op(space, rng) for _ in range(5)]
        probes = [random_point(space, random.Random(95 + i)) for i in range(3)]

        with ClusterFrontend(tmp_path / "cluster", shards=3, replication=2,
                             flush_interval=0) as cluster:
            vid = cluster.add_venue(
                space, objects=random_objects(space, 8, seed=81))
            for op in ops:
                cluster.submit(Request(venue=vid, kind="update",
                                       op=op)).result(timeout=60.0)
            harness = ClusterFaultHarness(cluster)
            before = answers(cluster_execute(cluster), vid, probes)
            harness.kill_replica(vid)
            # every read still answers — the rotation skips the corpse —
            # asking twice per probe so the dead slot is rotated across
            after = [answers(cluster_execute(cluster), vid, probes)
                     for _ in range(2)]
            assert after == [before, before]
            assert cluster.stats().promotions == 0  # primary never moved


# ----------------------------------------------------------------------
# Log damage: crash-shaped tails recover to exactly the acked prefix
# ----------------------------------------------------------------------
class TestLogDamage:
    def _crashed_router_with_ops(self, tmp_path, space, ops, seed):
        crashed = VenueRouter(SnapshotCatalog(tmp_path / "cat"), oplog=True)
        vid = crashed.add_venue(
            space, objects=random_objects(space, 8, seed=seed))
        apply_all(crashed, vid, ops)  # acked: in the log, not the snapshot
        return vid  # the router is abandoned, as a crash would leave it

    def test_torn_tail_recovers_every_acked_update(self, tmp_path):
        space = build_mall("tiny", name="torn-mall")
        rng = random.Random(19)
        ops = [insert_op(space, rng) for _ in range(6)]
        probes = [random_point(space, random.Random(23))]
        vid = self._crashed_router_with_ops(tmp_path, space, ops, seed=85)
        tear_oplog_tail(venue_oplog_path(tmp_path / "cat", space))

        recovered = VenueRouter(SnapshotCatalog(tmp_path / "cat"), oplog=True)
        assert recovered.add_venue(space) == vid  # warm start: snap + log
        local, lvid = baseline_router(tmp_path, space, objects_seed=85,
                                      n_objects=8)
        apply_all(local, lvid, ops)
        assert (answers(recovered.execute, vid, probes)
                == answers(local.execute, lvid, probes))
        assert recovered.stats().log_replays == len(ops)

    def test_corrupted_tail_record_drops_exactly_the_damaged_op(
            self, tmp_path):
        space = build_mall("tiny", name="corrupt-mall")
        rng = random.Random(29)
        ops = [insert_op(space, rng) for _ in range(6)]
        probes = [random_point(space, random.Random(31))]
        vid = self._crashed_router_with_ops(tmp_path, space, ops, seed=87)
        corrupt_oplog_tail(venue_oplog_path(tmp_path / "cat", space))

        recovered = VenueRouter(SnapshotCatalog(tmp_path / "cat"), oplog=True)
        recovered.add_venue(space)
        # the last record is unreadable, so recovery equals a sequential
        # replay of all but the final op — the valid-prefix contract
        local, lvid = baseline_router(tmp_path, space, objects_seed=87,
                                      n_objects=8)
        apply_all(local, lvid, ops[:-1])
        assert (answers(recovered.execute, vid, probes)
                == answers(local.execute, lvid, probes))
        # and the log is repaired on the next append: the stream continues
        extra = insert_op(space, rng)
        assert (recovered.execute(Request(venue=vid, kind="update", op=extra))
                == local.execute(Request(venue=lvid, kind="update", op=extra)))

    def test_replicas_refuse_updates(self, tmp_path):
        space = build_mall("tiny", name="role-mall")
        router = VenueRouter(SnapshotCatalog(tmp_path / "cat"), oplog=True)
        vid = router.add_venue(space, role="replica",
                               objects=random_objects(space, 6, seed=89))
        with pytest.raises(ServingError, match="read replica"):
            router.execute(Request(venue=vid, kind="update",
                                   op=insert_op(space, random.Random(1))))
        with pytest.raises(ServingError, match="role"):
            router.add_venue(space, role="observer")


# ----------------------------------------------------------------------
# Elastic membership: live shard add/remove under read traffic
# ----------------------------------------------------------------------
class TestElasticResize:
    def test_add_and_remove_shard_under_traffic(self, tmp_path):
        # names picked so the 3 -> 4 ring change relocates two of the
        # four venues (placement is deterministic, so this is stable)
        spaces = [build_mall("tiny", name=f"elastic-{i}") for i in range(4, 8)]
        rng = random.Random(37)
        per_venue_ops = {i: [insert_op(s, rng) for _ in range(3)]
                         for i, s in enumerate(spaces)}
        probes = {i: random_point(s, random.Random(40 + i))
                  for i, s in enumerate(spaces)}

        with ClusterFrontend(tmp_path / "cluster", shards=3, replication=2,
                             flush_interval=0) as cluster:
            ids = [cluster.add_venue(s, objects=random_objects(s, 6, seed=i))
                   for i, s in enumerate(spaces)]
            for i, vid in enumerate(ids):
                for op in per_venue_ops[i][:2]:
                    cluster.submit(Request(venue=vid, kind="update",
                                           op=op)).result(timeout=60.0)

            # how many venues the ring relocates is a pure function of
            # the membership change — compute it independently
            before_ring = HashRing(range(3))
            after_ring = HashRing(range(3))
            after_ring.add_node(3)
            expected_moves = sum(
                before_ring.nodes_for(vid, 2) != after_ring.nodes_for(vid, 2)
                for vid in ids)
            assert expected_moves >= 1  # names chosen so the test bites

            stop = threading.Event()
            errors: list[Exception] = []

            def pump_reads():
                try:
                    while not stop.is_set():
                        for i, vid in enumerate(ids):
                            cluster.request(vid, "knn", source=probes[i],
                                            k=2).result(timeout=60.0)
                except Exception as exc:  # noqa: BLE001 - reported below
                    errors.append(exc)

            pump = threading.Thread(target=pump_reads)
            pump.start()
            try:
                new = cluster.add_shard()
                assert cluster.shards == 4
                for vid in ids:
                    placement = cluster.placement(vid)
                    assert placement == after_ring.nodes_for(vid, 2)
                cluster.remove_shard(new)
                assert cluster.shards == 3
            finally:
                stop.set()
                pump.join(timeout=60.0)
            assert not errors  # reads flowed through both transitions
            stats = cluster.stats()
            assert stats.moves == 2 * expected_moves

            # placements are back, the handoff left working primaries,
            # and nothing was lost along the way
            local_answers = {}
            for i, vid in enumerate(ids):
                assert cluster.placement(vid) == before_ring.nodes_for(vid, 2)
                for op in per_venue_ops[i][2:]:
                    cluster.submit(Request(venue=vid, kind="update",
                                           op=op)).result(timeout=60.0)
                local = VenueRouter(SnapshotCatalog(tmp_path / f"seq{i}"))
                lvid = local.add_venue(
                    spaces[i], objects=random_objects(spaces[i], 6, seed=i))
                apply_all(local, lvid, per_venue_ops[i])
                local_answers[vid] = answers(local.execute, lvid,
                                             [probes[i]])
            for i, vid in enumerate(ids):
                assert (answers(cluster_execute(cluster), vid, [probes[i]])
                        == local_answers[vid])


# ----------------------------------------------------------------------
# Shard respawn re-registers venues pipelined (not one round-trip each)
# ----------------------------------------------------------------------
class TestRespawnRegistration:
    def test_respawn_submits_every_registration_before_awaiting_any(
            self, tmp_path, monkeypatch):
        spaces = [build_mall("tiny", name=f"pipe-{i}") for i in range(8)]
        with ClusterFrontend(tmp_path / "cat", shards=1,
                             flush_interval=0) as cluster:
            ids = [cluster.add_venue(s, objects=random_objects(s, 4, seed=i))
                   for i, s in enumerate(spaces)]
            harness = ClusterFaultHarness(cluster)

            events: list[tuple[str, str]] = []
            real_submit = ShardProcess.submit

            def recording_submit(self, request, *, timeout=None):
                future = real_submit(self, request, timeout=timeout)
                if request.kind != "add_venue":
                    return future
                events.append(("submit", request.venue))

                class _Wrapped:
                    def result(_self, timeout=None):
                        events.append(("result", request.venue))
                        return future.result(timeout)

                return _Wrapped()

            monkeypatch.setattr(ShardProcess, "submit", recording_submit)
            harness.kill(0)
            # the first request respawns the shard, which re-registers
            # all eight venues
            assert cluster.request(ids[0], "ping").result(timeout=60.0)
            submits_before_first_result = 0
            for kind, _ in events:
                if kind == "result":
                    break
                submits_before_first_result += 1
            assert submits_before_first_result == len(ids)
            assert sorted(v for k, v in events if k == "submit") == sorted(ids)
            assert cluster.stats().restarts == 1
