"""OpLog: the per-venue durable update log next to each snapshot.

Covers the format round-trip, the valid-prefix recovery contract for
torn and corrupted tails (damage is data, never an exception), tail
repair on the next append, atomic compaction with gap detection for
readers left behind, and the single-writer ordering guard.
"""

from __future__ import annotations

import pytest

from repro.exceptions import SnapshotError
from repro.model.entities import IndoorPoint
from repro.model.objects import UpdateOp
from repro.storage import OPLOG_SUFFIX, OpLog, oplog_path, scan_oplog
from repro.testing import corrupt_oplog_tail, tear_oplog_tail


def ops(n, start=1):
    """n insert ops producing versions start..start+n-1."""
    return [
        (v, UpdateOp(kind="insert", location=IndoorPoint(1, float(v), 2.0),
                     label=f"o{v}", category="cart"))
        for v in range(start, start + n)
    ]


@pytest.fixture()
def log(tmp_path):
    log = OpLog(tmp_path / "venue.oplog")
    yield log
    log.close()


class TestRoundTrip:
    def test_append_then_read_returns_identical_ops(self, log):
        for version, op in ops(5):
            log.append(version, op)
        records = log.read()
        assert [r.version for r in records] == [1, 2, 3, 4, 5]
        assert [r.op for r in records] == [op for _, op in ops(5)]

    def test_read_after_version_filters(self, log):
        for version, op in ops(5):
            log.append(version, op)
        assert [r.version for r in log.read(after_version=3)] == [4, 5]
        assert log.read(after_version=5) == []

    def test_missing_file_is_an_empty_undamaged_log(self, tmp_path):
        log = OpLog(tmp_path / "absent.oplog")
        assert log.read() == []
        assert log.tail_signature() is None
        scan = scan_oplog(tmp_path / "absent.oplog")
        assert scan.records == [] and not scan.damaged

    def test_a_second_reader_sees_appends_without_reopening(self, log):
        reader = OpLog(log.path)
        sig0 = reader.tail_signature()
        log.append(*ops(1)[0])  # append version 1
        assert reader.tail_signature() != sig0
        assert [r.version for r in reader.read()] == [1]

    def test_delete_and_move_ops_survive_the_trip(self, log):
        log.append(1, UpdateOp(kind="insert",
                               location=IndoorPoint(2, 1.0, 1.0)))
        log.append(2, UpdateOp(kind="move", object_id=7,
                               location=IndoorPoint(3, 4.0, 5.5)))
        log.append(3, UpdateOp(kind="delete", object_id=7))
        kinds = [r.op.kind for r in log.read()]
        assert kinds == ["insert", "move", "delete"]
        assert log.read()[1].op.location == IndoorPoint(3, 4.0, 5.5)


class TestDamageRecovery:
    def test_torn_tail_yields_the_valid_prefix(self, log):
        for version, op in ops(4):
            log.append(version, op)
        log.close()
        tear_oplog_tail(log.path)
        scan = scan_oplog(log.path)
        assert [r.version for r in scan.records] == [1, 2, 3, 4]
        assert scan.damaged
        assert [r.version for r in log.read()] == [1, 2, 3, 4]

    def test_corrupted_record_ends_the_prefix_before_it(self, log):
        for version, op in ops(4):
            log.append(version, op)
        log.close()
        destroyed = corrupt_oplog_tail(log.path)
        assert destroyed == 4
        scan = scan_oplog(log.path)
        assert [r.version for r in scan.records] == [1, 2, 3]
        assert scan.damaged

    def test_next_append_repairs_a_torn_tail(self, log):
        for version, op in ops(3):
            log.append(version, op)
        log.close()
        tear_oplog_tail(log.path)
        log.append(*ops(1, start=4)[0])  # reopen repairs, then appends
        scan = scan_oplog(log.path)
        assert [r.version for r in scan.records] == [1, 2, 3, 4]
        assert not scan.damaged  # the garbage bytes are gone

    def test_empty_file_and_pure_garbage_are_valid_empty_logs(self, tmp_path):
        path = tmp_path / "junk.oplog"
        path.write_bytes(b"")
        assert scan_oplog(path).records == []
        path.write_bytes(b"\xff" * 64)  # garbage length -> no records
        scan = scan_oplog(path)
        assert scan.records == [] and scan.damaged and scan.valid_bytes == 0


class TestWriterContract:
    def test_out_of_order_append_is_refused(self, log):
        log.append(1, ops(1)[0][1])
        with pytest.raises(SnapshotError, match="in order"):
            log.append(3, ops(1)[0][1])
        # the refused record left no trace
        assert [r.version for r in log.read()] == [1]

    def test_a_version_gap_inside_the_file_ends_the_prefix(self, log):
        log.append(1, ops(1)[0][1])
        log.close()
        # forge what a broken writer would produce: version 5 after 1
        from repro.storage.oplog import _encode_record
        with open(log.path, "ab") as fh:
            fh.write(_encode_record(5, ops(1)[0][1]))
        scan = scan_oplog(log.path)
        assert [r.version for r in scan.records] == [1] and scan.damaged


class TestCompaction:
    def test_compact_drops_captured_records_atomically(self, log):
        for version, op in ops(6):
            log.append(version, op)
        assert log.compact(4) == 4
        assert [r.version for r in log.read(after_version=4)] == [5, 6]
        assert log.compact(4) == 0  # idempotent
        # appends continue seamlessly after compaction
        log.append(7, ops(1)[0][1])
        assert [r.version for r in log.read(after_version=4)] == [5, 6, 7]

    def test_reader_behind_the_compaction_floor_is_told_to_rewarm(self, log):
        for version, op in ops(6):
            log.append(version, op)
        log.compact(4)
        with pytest.raises(SnapshotError, match="compacted past"):
            log.read(after_version=2)
        with pytest.raises(SnapshotError, match="compacted past"):
            log.read()  # a version-0 reader is behind the floor too

    def test_compact_everything_leaves_an_appendable_empty_log(self, log):
        for version, op in ops(3):
            log.append(version, op)
        assert log.compact(3) == 3
        assert log.read(after_version=3) == []
        log.append(4, ops(1)[0][1])
        assert [r.version for r in log.read(after_version=3)] == [4]


def test_oplog_path_convention(tmp_path):
    snap = tmp_path / "ab12" / "vip-tree.snap"
    assert oplog_path(snap) == snap.with_suffix(OPLOG_SUFFIX)
    assert oplog_path(snap).name == "vip-tree.oplog"
