"""Unit tests for the venue builder."""

import pytest

from repro import IndoorSpaceBuilder, PartitionKind, VenueError


class TestPartitions:
    def test_ids_are_dense(self):
        b = IndoorSpaceBuilder()
        assert b.add_room() == 0
        assert b.add_hallway() == 1
        assert b.add_outdoor() == 2

    def test_kind_helpers(self):
        b = IndoorSpaceBuilder()
        r, h, o = b.add_room(), b.add_hallway(), b.add_outdoor()
        b.add_door(r, h, 0, 0)
        b.add_door(h, o, 1, 0)
        b.add_exterior_door(o, 2, 0)
        space = b.build()
        assert space.partitions[r].kind is PartitionKind.ROOM
        assert space.partitions[h].kind is PartitionKind.HALLWAY
        assert space.partitions[o].kind is PartitionKind.OUTDOOR

    def test_default_labels(self):
        b = IndoorSpaceBuilder()
        r = b.add_room()
        b.add_exterior_door(r, 0, 0)
        assert "room" in b.build().partitions[r].label


class TestDoors:
    def test_door_wiring(self):
        b = IndoorSpaceBuilder()
        a, c = b.add_room(), b.add_room()
        d = b.add_door(a, c, x=1.0, y=2.0)
        space = b.build()
        assert d in space.partitions[a].door_ids
        assert d in space.partitions[c].door_ids
        assert space.partitions_of_door(d) == (a, c)

    def test_door_floor_defaults_to_first_partition(self):
        b = IndoorSpaceBuilder()
        a = b.add_room(floor=3)
        c = b.add_room(floor=3)
        d = b.add_door(a, c, x=0, y=0)
        assert b.build().doors[d].position.floor == 3

    def test_door_explicit_floor(self):
        b = IndoorSpaceBuilder()
        a = b.add_room(floor=0)
        c = b.add_room(floor=0)
        d = b.add_door(a, c, x=0, y=0, floor=2.5)
        assert b.build().doors[d].position.floor == 2.5

    def test_self_door_raises(self):
        b = IndoorSpaceBuilder()
        a = b.add_room()
        with pytest.raises(VenueError):
            b.add_door(a, a, 0, 0)

    def test_unknown_partition_raises(self):
        b = IndoorSpaceBuilder()
        a = b.add_room()
        with pytest.raises(VenueError):
            b.add_door(a, 99, 0, 0)
        with pytest.raises(VenueError):
            b.add_exterior_door(42, 0, 0)

    def test_exterior_door_single_owner(self):
        b = IndoorSpaceBuilder()
        a = b.add_room()
        d = b.add_exterior_door(a, 0, 0)
        space = b.build()
        assert space.is_exterior_door(d)


class TestVerticalConnectors:
    def test_staircase_creates_two_door_partition(self):
        b = IndoorSpaceBuilder()
        lo, hi = b.add_hallway(floor=0), b.add_hallway(floor=1)
        b.add_exterior_door(lo, 0, 0)
        # hallways need >delta doors to count as hallways; irrelevant here
        stair = b.add_staircase(lo, hi, x=1, y=1, floor_lower=0, floor_upper=1)
        space = b.build()
        part = space.partitions[stair]
        assert part.kind is PartitionKind.STAIRCASE
        assert len(part.door_ids) == 2
        floors = sorted(space.doors[d].position.floor for d in part.door_ids)
        assert floors == [0, 1]

    def test_staircase_multiplier_sets_fixed_traversal(self):
        b = IndoorSpaceBuilder(floor_height=4.0)
        lo, hi = b.add_room(floor=0), b.add_room(floor=1)
        b.add_exterior_door(lo, 0, 0)
        stair = b.add_staircase(
            lo, hi, x=1, y=1, floor_lower=0, floor_upper=1, length_multiplier=2.0
        )
        assert b.build().partitions[stair].fixed_traversal == pytest.approx(8.0)

    def test_staircase_default_is_euclidean(self):
        b = IndoorSpaceBuilder()
        lo, hi = b.add_room(floor=0), b.add_room(floor=1)
        b.add_exterior_door(lo, 0, 0)
        stair = b.add_staircase(lo, hi, x=1, y=1, floor_lower=0, floor_upper=1)
        assert b.build().partitions[stair].fixed_traversal is None

    def test_lift_creates_n_minus_1_segments(self):
        b = IndoorSpaceBuilder()
        halls = [b.add_hallway(floor=f) for f in range(4)]
        b.add_exterior_door(halls[0], 0, 0)
        for f in range(3):
            b.add_staircase(halls[f], halls[f + 1], x=9, y=9, floor_lower=f, floor_upper=f + 1)
        segs = b.add_lift(halls, x=0, y=0, floors=[0.0, 1.0, 2.0, 3.0], travel_weight=1.5)
        space = b.build()
        assert len(segs) == 3
        for seg in segs:
            assert space.partitions[seg].kind is PartitionKind.LIFT
            assert space.partitions[seg].fixed_traversal == 1.5
            assert len(space.partitions[seg].door_ids) == 2

    def test_lift_argument_mismatch_raises(self):
        b = IndoorSpaceBuilder()
        a = b.add_room(floor=0)
        with pytest.raises(VenueError):
            b.add_lift([a], x=0, y=0, floors=[0.0])
        with pytest.raises(VenueError):
            b.add_lift([a, a], x=0, y=0, floors=[0.0])


class TestBuild:
    def test_build_validates(self):
        b = IndoorSpaceBuilder()
        b.add_room()  # no doors
        with pytest.raises(VenueError):
            b.build()

    def test_build_passes_metadata(self):
        b = IndoorSpaceBuilder(name="meta", floor_height=3.2)
        r = b.add_room()
        b.add_exterior_door(r, 0, 0)
        space = b.build()
        assert space.name == "meta"
        assert space.floor_height == 3.2
