"""Dataset generators, profiles, replication and the Table 2 harness."""

import pytest

from repro import VenueError, build_d2d_graph
from repro.datasets import (
    PAPER_TABLE2,
    VENUE_NAMES,
    build_campus,
    build_mall,
    build_office,
    load_venue,
    replicate_space,
    venue_row,
)
from repro.model.entities import PartitionKind


class TestGenerators:
    @pytest.mark.parametrize("builder", [build_mall, build_office, build_campus])
    def test_valid_and_connected(self, builder):
        space = builder("tiny")
        build_d2d_graph(space)  # raises if disconnected

    @pytest.mark.parametrize("builder", [build_mall, build_office, build_campus])
    def test_deterministic_by_seed(self, builder):
        a = builder("tiny", seed=5)
        b = builder("tiny", seed=5)
        assert a.num_doors == b.num_doors
        assert [d.position for d in a.doors] == [d.position for d in b.doors]

    @pytest.mark.parametrize("builder", [build_mall, build_office, build_campus])
    def test_seed_changes_layout(self, builder):
        a = builder("tiny", seed=1)
        b = builder("tiny", seed=2)
        assert [d.position for d in a.doors] != [d.position for d in b.doors]

    @pytest.mark.parametrize("builder", [build_mall, build_office, build_campus])
    def test_profiles_scale(self, builder):
        tiny = builder("tiny").num_doors
        small = builder("small").num_doors
        assert tiny < small

    def test_mall_has_exterior_doors(self):
        space = build_mall("tiny")
        assert any(space.is_exterior_door(d) for d in range(space.num_doors))

    def test_office_has_lift_and_stairs(self):
        space = build_office("tiny")
        kinds = {p.kind for p in space.partitions}
        assert PartitionKind.LIFT in kinds
        assert PartitionKind.STAIRCASE in kinds

    def test_campus_walkways_connect_buildings(self):
        space = build_campus("tiny")
        outdoor = [p for p in space.partitions if p.kind is PartitionKind.OUTDOOR]
        assert outdoor
        # each walkway holds the entrance doors of several buildings
        assert max(len(p.door_ids) for p in outdoor) >= 3

    def test_unknown_profile_raises(self):
        with pytest.raises(ValueError):
            build_mall("enormous")


class TestVenueRegistry:
    @pytest.mark.parametrize("name", VENUE_NAMES)
    def test_all_venues_load(self, name):
        space = load_venue(name, "tiny")
        assert space.name == name
        build_d2d_graph(space)

    def test_unknown_venue_raises(self):
        with pytest.raises(ValueError):
            load_venue("Narnia")

    def test_replicated_roughly_doubles(self):
        base = load_venue("MC", "tiny")
        double = load_venue("MC-2", "tiny")
        assert double.num_doors >= 2 * base.num_doors
        assert double.num_doors <= 2 * base.num_doors + 10  # seam stairs

    def test_cl2_doubles_levels(self):
        base = load_venue("CL", "tiny").stats()
        double = load_venue("CL-2", "tiny").stats()
        assert double.num_floors >= 2 * base.num_floors - 1

    def test_paper_table2_reference_complete(self):
        assert set(PAPER_TABLE2) == set(VENUE_NAMES)


class TestReplication:
    def test_counts(self, tower_space):
        double = replicate_space(tower_space, times=2)
        assert double.num_partitions >= 2 * tower_space.num_partitions
        assert double.num_doors >= 2 * tower_space.num_doors
        build_d2d_graph(double)  # connected through seam stairs

    def test_floors_shift(self, tower_space):
        double = replicate_space(tower_space, times=2)
        floors = {p.floor for p in double.partitions if p.floor is not None}
        assert max(floors) >= 2 * max(
            p.floor for p in tower_space.partitions if p.floor is not None
        )

    def test_times_one_is_copy(self, tower_space):
        copy = replicate_space(tower_space, times=1)
        assert copy.num_doors == tower_space.num_doors

    def test_invalid_times(self, tower_space):
        with pytest.raises(VenueError):
            replicate_space(tower_space, times=0)

    def test_custom_name(self, tower_space):
        assert replicate_space(tower_space, name="X").name == "X"
        assert replicate_space(tower_space).name == "tower-2"

    def test_triple_replication(self, tower_space):
        triple = replicate_space(tower_space, times=3)
        build_d2d_graph(triple)
        assert triple.num_partitions >= 3 * tower_space.num_partitions


class TestVenueRow:
    def test_fields(self):
        row = venue_row(load_venue("MC", "tiny"))
        assert row["name"] == "MC"
        assert row["doors"] > 0
        assert row["edges"] > row["doors"]
        assert row["avg_out_degree"] > 0
