"""Numpy query kernels: bit-identity against the python reference,
deterministic kNN tie-breaking, the live pruning bound, and mmap'd
snapshot loading (zero-copy views + per-section modification detection).

The python query paths in :mod:`repro.core` are the oracle-checked
reference; every test here asserts *exact* (``==``) equality of the
numpy kernels against them — not approximate closeness — across all
fixture venues, both tree kinds, and after random update streams.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import IndoorPoint, IPTree, ObjectIndex, UpdateOp, VIPTree, make_object_set
from repro.core.query_knn import INF, _Search, knn
from repro.core.query_range import range_query
from repro.core.query_distance import shortest_distance
from repro.datasets import random_objects, random_point
from repro.engine import QueryEngine
from repro.exceptions import QueryError, SnapshotError
from repro.kernels import HAVE_NUMPY, NumpyKernels, resolve_kernels
from repro.storage import SnapshotCatalog, load_snapshot, save_snapshot
from repro.testing import sample_points

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not importable")

VENUES = ["fig1", "tower", "mall", "office", "campus"]
TREE_KINDS = {"ip": IPTree, "vip": VIPTree}


# ----------------------------------------------------------------------
# Shared per-venue trees + object indexes (built once per module)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def built(all_fixture_spaces):
    """``(space, tree, object_index)`` per (venue, tree-kind) pair."""
    out = {}
    for venue, space in all_fixture_spaces.items():
        for kind, cls in TREE_KINDS.items():
            tree = cls.build(space)
            index = ObjectIndex(tree, random_objects(space, 10, seed=41))
            out[venue, kind] = (space, tree, index)
    return out


def _queries(space, count=8, seed=7):
    return sample_points(space, count, seed=seed)


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------
class TestResolveKernels:
    def test_auto_and_none_pick_numpy(self):
        assert isinstance(resolve_kernels("auto"), NumpyKernels)
        assert isinstance(resolve_kernels(None), NumpyKernels)

    def test_python_is_reference(self):
        assert resolve_kernels("python") is None

    def test_numpy_explicit(self):
        assert isinstance(resolve_kernels("numpy"), NumpyKernels)

    def test_instance_passthrough(self):
        backend = NumpyKernels()
        assert resolve_kernels(backend) is backend

    def test_unknown_spec_refused(self):
        with pytest.raises(QueryError, match="unknown kernels spec"):
            resolve_kernels("fortran")


# ----------------------------------------------------------------------
# Bit-identity: numpy == python, exactly
# ----------------------------------------------------------------------
@pytest.mark.parametrize("venue", VENUES)
@pytest.mark.parametrize("kind", list(TREE_KINDS))
class TestBitIdentity:
    def test_distance_identical(self, built, venue, kind):
        space, tree, index = built[venue, kind]
        pts = _queries(space)
        kern = NumpyKernels()
        for s in pts:
            for t in pts:
                py = shortest_distance(tree, s, t)
                np_ = shortest_distance(tree, s, t, kernels=kern)
                assert py == np_  # exact, not approx

    def test_knn_identical(self, built, venue, kind):
        space, tree, index = built[venue, kind]
        kern = NumpyKernels()
        for q in _queries(space):
            for k in (1, 3, 10, 25):
                assert knn(tree, index, q, k) == knn(tree, index, q, k, kernels=kern)

    def test_range_identical(self, built, venue, kind):
        space, tree, index = built[venue, kind]
        kern = NumpyKernels()
        for q in _queries(space):
            for radius in (5.0, 30.0, 1e9):
                py = range_query(tree, index, q, radius)
                np_ = range_query(tree, index, q, radius, kernels=kern)
                assert py == np_


# One randomized equivalence property: apply a random UpdateOp stream,
# then demand bit-identical answers from both backends on every venue.
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_property_equivalence_after_updates(built, seed):
    rng = random.Random(seed)
    venue = rng.choice(VENUES)
    kind = rng.choice(list(TREE_KINDS))
    space, tree, _ = built[venue, kind]
    index = ObjectIndex(tree, random_objects(space, 8, seed=seed % 1000))
    kern = NumpyKernels()
    # Random update stream: inserts, deletes, moves — applied to the one
    # shared index both backends then query.
    live = [o.object_id for o in index.objects]
    for _ in range(rng.randint(1, 12)):
        op = rng.choice(("insert", "delete", "move"))
        if op == "insert" or not live:
            live.append(index.apply(UpdateOp("insert", location=random_point(space, rng))))
        elif op == "delete":
            index.apply(UpdateOp("delete", object_id=live.pop(rng.randrange(len(live)))))
        else:
            index.apply(UpdateOp(
                "move",
                object_id=rng.choice(live),
                location=random_point(space, rng),
            ))
    q = random_point(space, rng)
    t = random_point(space, rng)
    assert shortest_distance(tree, q, t) == shortest_distance(tree, q, t, kernels=kern)
    k = rng.randint(1, 6)
    assert knn(tree, index, q, k) == knn(tree, index, q, k, kernels=kern)
    radius = rng.uniform(1.0, 80.0)
    assert range_query(tree, index, q, radius) == range_query(
        tree, index, q, radius, kernels=kern
    )


# ----------------------------------------------------------------------
# kNN tie-break: (distance, object_id) — smaller id wins at the k-th
# ----------------------------------------------------------------------
class TestTieBreak:
    @pytest.fixture(scope="class")
    def tied(self, mall_space):
        """Many co-located objects: every distance is tied."""
        rng = random.Random(3)
        spot = random_point(mall_space, rng)
        other = random_point(mall_space, rng)
        locs = [spot] * 6 + [other] * 2
        tree = VIPTree.build(mall_space)
        return mall_space, tree, ObjectIndex(tree, make_object_set(mall_space, locs))

    @pytest.mark.parametrize("kernels", ["python", "numpy"])
    def test_kth_tie_resolves_to_smaller_id(self, tied, kernels):
        space, tree, index = tied
        kern = NumpyKernels() if kernels == "numpy" else None
        rng = random.Random(11)
        for _ in range(5):
            q = random_point(space, rng)
            for k in range(1, 9):
                got = knn(tree, index, q, k, kernels=kern)
                # Oracle: the k lexicographically smallest (d, oid) pairs
                # over *all* objects — ties at the k-th must keep the
                # smaller object ids.
                all_pairs = sorted(
                    (shortest_distance(tree, q, o.location).distance, o.object_id)
                    for o in index.objects
                )
                assert [(n.distance, n.object_id) for n in got] == all_pairs[:k]

    def test_cross_backend_tie_identity(self, tied):
        space, tree, index = tied
        kern = NumpyKernels()
        rng = random.Random(23)
        for _ in range(5):
            q = random_point(space, rng)
            for k in (2, 4, 7):
                assert knn(tree, index, q, k) == knn(tree, index, q, k, kernels=kern)


# ----------------------------------------------------------------------
# Live pruning bound: tightening mid-leaf scans fewer entries
# ----------------------------------------------------------------------
class TestLiveBound:
    @pytest.fixture(scope="class")
    def crowded(self, office_space):
        """One leaf holding many objects, far from the query point."""
        tree = VIPTree.build(office_space)
        # All objects in one partition → one crowded leaf.
        rng = random.Random(5)
        parts = [p.partition_id for p in office_space.partitions
                 if p.floor is not None and p.fixed_traversal is None]
        pid = parts[-1]
        locs = [random_point(office_space, rng, [pid]) for _ in range(12)]
        index = ObjectIndex(tree, make_object_set(office_space, locs))
        leaf = tree.leaf_of_point_partition(pid)
        # A query point whose leaf is NOT the crowded one, so the
        # cross-leaf merge path (the one the bound prunes) is exercised.
        query = next(
            p for p in sample_points(office_space, 50, seed=9)
            if tree.leaf_of_point_partition(p.partition_id) != leaf
        )
        return tree, index, query, leaf

    def _prime(self, search, leaf):
        """Descend root -> leaf so node_dists[leaf] exists (what the
        kNN best-first loop does before reading a leaf's objects)."""
        path = []
        nid = leaf
        while nid is not None and nid not in search.node_dists:
            path.append(nid)
            nid = search.tree.nodes[nid].parent
        for child in reversed(path):
            search.child_distances(search.tree.nodes[child].parent, child)

    def test_live_bound_scans_fewer_entries_python(self, crowded):
        """The reference merge re-reads the bound on every pop, so a
        bound that tightens *mid-leaf* (kNN's dk closure) prunes entries
        a stale leaf-entry bound would have scanned."""
        tree, index, query, leaf = crowded

        search = _Search(tree, index, query)
        self._prime(search, leaf)
        loose = list(search.leaf_object_distances(leaf, INF))
        scanned_stale = search.stats.list_entries_scanned
        assert scanned_stale == sum(
            len(lst) for lst in index.access_lists[leaf].values()
        )

        best = [INF]

        def live():
            return best[0]

        search = _Search(tree, index, query)
        self._prime(search, leaf)
        tight = []
        for d, oid in search.leaf_object_distances(leaf, live):
            tight.append((d, oid))
            if d < best[0]:
                best[0] = d
        scanned_live = search.stats.list_entries_scanned

        assert tight  # the nearest object always survives the bound
        assert tight[0] == loose[0]  # same winner
        assert scanned_live < scanned_stale

    @pytest.mark.parametrize("kernels", ["python", "numpy"])
    def test_tighter_entry_bound_scans_fewer_entries(self, crowded, kernels):
        """Both backends thread the bound into the scan itself: the
        bound kNN carries into a later leaf (already tightened by
        earlier leaves) cuts the counted access-list entries, instead of
        only filtering yielded results."""
        tree, index, query, leaf = crowded
        kern = NumpyKernels() if kernels == "numpy" else None

        def drain(bound):
            search = _Search(tree, index, query, kernels=kern)
            self._prime(search, leaf)
            got = list(search.leaf_object_distances(leaf, bound))
            return got, search.stats.list_entries_scanned

        loose, scanned_loose = drain(INF)
        nearest = loose[0][0]
        tight, scanned_tight = drain(nearest)  # what dk() would be at entry
        assert tight[0] == loose[0]
        assert scanned_tight < scanned_loose

    def test_python_and_numpy_agree_on_counter_inputs(self, crowded):
        """Same bound schedule → same yielded stream on both backends."""
        tree, index, query, leaf = crowded
        streams = []
        for kern in (None, NumpyKernels()):
            search = _Search(tree, index, query, kernels=kern)
            self._prime(search, leaf)
            streams.append(list(search.leaf_object_distances(leaf, 1e12)))
        assert streams[0] == streams[1]


# ----------------------------------------------------------------------
# mmap'd snapshots: zero-copy loading + per-section tamper detection
# ----------------------------------------------------------------------
class TestMmapSnapshots:
    @pytest.fixture()
    def snap_path(self, mall_space, tmp_path):
        tree = VIPTree.build(mall_space)
        index = ObjectIndex(tree, random_objects(mall_space, 8, seed=3))
        path = tmp_path / "mall.snap"
        save_snapshot(path, tree, index)
        return path

    def test_mmap_and_regular_answers_identical(self, mall_space, snap_path):
        plain = load_snapshot(snap_path)
        mapped = load_snapshot(snap_path, mmap=True)
        assert plain.mapping is None
        assert mapped.mapping is not None
        e_plain = plain.engine()
        e_map = mapped.engine()
        for q in sample_points(mall_space, 6, seed=2):
            assert e_plain.knn(q, 4) == e_map.knn(q, 4)
            assert e_plain.range_query(q, 40.0) == e_map.range_query(q, 40.0)
            for t in sample_points(mall_space, 3, seed=8):
                assert e_plain.distance(q, t) == e_map.distance(q, t)

    def test_mmap_views_are_aligned_zero_copy(self, snap_path):
        import numpy as np

        snap = load_snapshot(snap_path, mmap=True)
        mats = [
            node.table.dist_matrix
            for node in snap.index.nodes
            if node.table is not None
        ]
        assert mats
        for m in mats:
            assert isinstance(m, np.ndarray)
            assert m.ctypes.data % 8 == 0  # 8-aligned within the section
        # At least the bulk tables must be read-only views of the map,
        # not private copies.
        assert any(not m.flags.writeable for m in mats)

    def test_reverify_passes_on_clean_file(self, snap_path):
        load_snapshot(snap_path, mmap=True).reverify()
        load_snapshot(snap_path).reverify()

    @pytest.mark.parametrize("section", ["payload", "binary"])
    def test_reverify_detects_on_disk_modification(self, snap_path, section):
        snap = load_snapshot(snap_path, mmap=True)
        info = snap.info
        assert info.binary_bytes > 0
        raw = snap_path.read_bytes()
        # Flip one byte inside the chosen section. ACCESS_READ maps are
        # MAP_SHARED, so the loaded snapshot sees the on-disk change.
        if section == "binary":
            offset = len(raw) - info.binary_bytes // 2
        else:
            offset = raw.index(b"\n") + 1 + info.payload_bytes // 2
        with open(snap_path, "r+b") as fh:
            fh.seek(offset)
            byte = fh.read(1)
            fh.seek(offset)
            fh.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(SnapshotError, match="modified on disk"):
            snap.reverify()

    def test_catalog_and_engine_mmap_smoke(self, mall_space, snap_path, tmp_path):
        engine = QueryEngine.from_snapshot(snap_path, space=mall_space, mmap=True)
        baseline = QueryEngine.from_snapshot(snap_path, space=mall_space)
        q = sample_points(mall_space, 1, seed=4)[0]
        assert engine.knn(q, 3) == baseline.knn(q, 3)

        catalog = SnapshotCatalog(tmp_path / "cat")
        cold = catalog.engine_for(mall_space, objects=random_objects(mall_space, 6, seed=1))
        warm = catalog.engine_for(mall_space, mmap=True)
        assert cold.knn(q, 3) == warm.knn(q, 3)
