"""Metric invariants across every fixture venue (seeded random, no new
dependencies): indoor distance is a metric and paths realize it.

* symmetry         d(s, t) == d(t, s)
* triangle         d(a, b) <= d(a, c) + d(c, b)
* path realization path cost == reported distance == oracle distance

Checked for VIP-Tree and IP-Tree against the Dijkstra oracle on all five
fixture venues (fig1, tower, mall, office, campus).
"""

import random

import pytest

from repro import IPTree, VIPTree
from repro.baselines import DijkstraOracle
from repro.core.query_path import path_length
from repro.testing import sample_points

VENUES = ["fig1", "tower", "mall", "office", "campus"]


@pytest.fixture(scope="module", params=VENUES)
def metric_setting(request, all_fixture_spaces):
    space = all_fixture_spaces[request.param]
    vip = VIPTree.build(space)
    ip = IPTree.build(space, d2d=vip.d2d)
    oracle = DijkstraOracle(space, vip.d2d)
    return space, ip, vip, oracle


def _sample_doors(space, count, seed):
    rng = random.Random(seed)
    return [rng.randrange(space.num_doors) for _ in range(count)]


class TestSymmetry:
    def test_point_symmetry(self, metric_setting):
        space, ip, vip, _ = metric_setting
        pts = sample_points(space, 16, seed=201)
        for s, t in zip(pts[:8], pts[8:]):
            for tree in (ip, vip):
                assert tree.shortest_distance(s, t) == pytest.approx(
                    tree.shortest_distance(t, s), abs=1e-9
                )

    def test_door_symmetry(self, metric_setting):
        space, ip, vip, _ = metric_setting
        doors = _sample_doors(space, 12, seed=202)
        for da, db in zip(doors[:6], doors[6:]):
            for tree in (ip, vip):
                assert tree.shortest_distance(da, db) == pytest.approx(
                    tree.shortest_distance(db, da), abs=1e-9
                )


class TestTriangleInequality:
    def test_sampled_triples(self, metric_setting):
        space, ip, vip, _ = metric_setting
        rng = random.Random(203)
        pts = sample_points(space, 15, seed=204)
        for _ in range(10):
            a, b, c = rng.sample(pts, 3)
            for tree in (ip, vip):
                ab = tree.shortest_distance(a, b)
                ac = tree.shortest_distance(a, c)
                cb = tree.shortest_distance(c, b)
                assert ab <= ac + cb + 1e-8

    def test_identity_of_indiscernibles(self, metric_setting):
        space, ip, vip, _ = metric_setting
        for p in sample_points(space, 4, seed=205):
            for tree in (ip, vip):
                assert tree.shortest_distance(p, p) == pytest.approx(0.0, abs=1e-12)


class TestPathRealizesDistance:
    def test_path_cost_equals_distance_and_oracle(self, metric_setting):
        space, ip, vip, oracle = metric_setting
        pts = sample_points(space, 12, seed=206)
        for s, t in zip(pts[:6], pts[6:]):
            expected = oracle.shortest_distance(s, t)
            for tree in (ip, vip):
                res = tree.shortest_path(s, t)
                assert res.distance == pytest.approx(expected, abs=1e-8)
                assert path_length(tree, res, s, t) == pytest.approx(
                    res.distance, abs=1e-8
                )
                # consecutive path doors are direct D2D edges
                for x, y in zip(res.doors, res.doors[1:]):
                    assert tree.d2d.has_edge(x, y)

    def test_trees_agree_with_each_other(self, metric_setting):
        space, ip, vip, oracle = metric_setting
        pts = sample_points(space, 10, seed=207)
        for s, t in zip(pts[:5], pts[5:]):
            d_ip = ip.shortest_distance(s, t)
            d_vip = vip.shortest_distance(s, t)
            assert d_ip == pytest.approx(d_vip, abs=1e-9)
            assert d_vip == pytest.approx(oracle.shortest_distance(s, t), abs=1e-9)
