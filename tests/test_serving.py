"""The serving layer: RWLock, VenueRouter, ServingFrontend, replay.

Covers the concurrency contracts the serving layer promises: reader
parallelism with writer exclusion and preference (RWLock), single warm
start under concurrent demand (catalog slot locks), LRU eviction with
write-back (router), backpressure and graceful shutdown (frontend), and
— the headline guarantee — concurrent multi-venue replay element-wise
identical to sequential replay.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import VIPTree, UpdateOp
from repro.datasets import (
    build_mall,
    build_office,
    multi_venue_streams,
    random_objects,
    random_point,
)
from repro.engine import QueryEngine, RWLock
from repro.exceptions import ServingError
from repro.serving import (
    ServingFrontend,
    ServingRequest,
    VenueRouter,
    concurrent_replay,
    sequential_replay,
)
from repro.storage import SnapshotCatalog, venue_fingerprint
from repro.testing import sample_points

import random


# ----------------------------------------------------------------------
# RWLock
# ----------------------------------------------------------------------
class TestRWLock:
    def test_readers_are_concurrent(self):
        lock = RWLock()
        inside = threading.Barrier(3, timeout=5)

        def reader():
            with lock.read():
                inside.wait()  # all three must sit inside simultaneously

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert not any(t.is_alive() for t in threads)

    def test_writer_excludes_readers_and_writers(self):
        lock = RWLock()
        log: list[str] = []

        def writer(tag):
            with lock.write():
                log.append(f"{tag}-in")
                time.sleep(0.02)
                log.append(f"{tag}-out")

        def reader():
            with lock.read():
                log.append("r-in")
                log.append("r-out")

        threads = [threading.Thread(target=writer, args=(f"w{i}",)) for i in range(2)]
        threads.append(threading.Thread(target=reader))
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        # critical sections never interleave: every "-in" is immediately
        # followed by its own "-out"
        for i in range(0, len(log), 2):
            assert log[i].split("-")[0] == log[i + 1].split("-")[0]
            assert log[i].endswith("-in") and log[i + 1].endswith("-out")

    def test_writer_preference_blocks_new_readers(self):
        lock = RWLock()
        reader_in = threading.Event()
        release_reader = threading.Event()
        writer_done = threading.Event()
        second_reader_ran = threading.Event()

        def first_reader():
            with lock.read():
                reader_in.set()
                assert release_reader.wait(timeout=5)

        def writer():
            lock.acquire_write()
            lock.release_write()
            writer_done.set()

        def second_reader():
            with lock.read():
                second_reader_ran.set()

        r1 = threading.Thread(target=first_reader)
        r1.start()
        assert reader_in.wait(timeout=5)
        w = threading.Thread(target=writer)
        w.start()
        time.sleep(0.05)  # let the writer queue up
        r2 = threading.Thread(target=second_reader)
        r2.start()
        # the queued writer must keep the second reader out
        time.sleep(0.05)
        assert not second_reader_ran.is_set()
        assert not writer_done.is_set()
        release_reader.set()
        for t in (r1, w, r2):
            t.join(timeout=5)
        assert writer_done.is_set() and second_reader_ran.is_set()


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------
@pytest.fixture()
def catalog(tmp_path):
    return SnapshotCatalog(tmp_path / "catalog")


@pytest.fixture(scope="module")
def two_venues():
    mall = build_mall("tiny", name="serve-mall")
    office = build_office("tiny", name="serve-office")
    return [
        (mall, random_objects(mall, 12, seed=5)),
        (office, random_objects(office, 10, seed=6)),
    ]


def make_router(catalog, venues, **kwargs):
    router = VenueRouter(catalog, **kwargs)
    ids = [router.add_venue(space, objects=objects) for space, objects in venues]
    return router, ids


# ----------------------------------------------------------------------
# ServingRequest
# ----------------------------------------------------------------------
def test_request_from_event_wraps_queries_and_updates(two_venues):
    space, objects = two_venues[0]
    stream = multi_venue_streams([(space, objects)], 40, update_ratio=1.0, seed=1)[0]
    kinds = set()
    for event in stream:
        req = ServingRequest.from_event("vid", event)
        kinds.add(req.kind)
        if isinstance(event, UpdateOp):
            assert req.kind == "update" and req.op is event
        else:
            assert req.kind == event.kind and req.source is event.source
    assert "update" in kinds and kinds & {"knn", "distance", "range"}


# ----------------------------------------------------------------------
# VenueRouter
# ----------------------------------------------------------------------
class TestVenueRouter:
    def test_dispatch_and_ids(self, catalog, two_venues):
        router, ids = make_router(catalog, two_venues)
        assert router.venue_ids() == ids
        assert ids[0] == venue_fingerprint(two_venues[0][0])
        name, kind = router.describe(ids[0])
        assert name == "serve-mall" and kind == "VIP-Tree"

        space, _ = two_venues[0]
        pts = sample_points(space, 3, seed=2)
        d = router.execute(ServingRequest(venue=ids[0], kind="distance",
                                          source=pts[0], target=pts[1]))
        p = router.execute(ServingRequest(venue=ids[0], kind="path",
                                          source=pts[0], target=pts[1]))
        nn = router.execute(ServingRequest(venue=ids[0], kind="knn", source=pts[2], k=3))
        rr = router.execute(ServingRequest(venue=ids[0], kind="range",
                                           source=pts[2], radius=25.0))
        assert d == pytest.approx(p.distance) and len(nn) == 3
        assert all(n.distance <= 25.0 for n in rr)

        engine = router.engine(ids[0])
        assert engine.thread_safe and engine is router.engine(ids[0])

    def test_unknown_venue_and_kind_rejected(self, catalog, two_venues):
        router, ids = make_router(catalog, two_venues)
        with pytest.raises(ServingError):
            router.execute(ServingRequest(venue="nope", kind="distance"))
        with pytest.raises(ServingError):
            router.describe("nope")
        with pytest.raises(ServingError):
            router.execute(ServingRequest(venue=ids[0], kind="teleport"))

    def test_second_router_loads_snapshots(self, catalog, two_venues):
        router, ids = make_router(catalog, two_venues)
        for vid in ids:
            router.engine(vid)
        assert catalog.has(two_venues[0][0], "VIP-Tree")  # cold build saved it

        fresh, ids2 = make_router(catalog, two_venues)
        assert ids2 == ids
        space, _ = two_venues[0]
        q = sample_points(space, 1, seed=3)[0]
        assert [n.object_id for n in fresh.engine(ids[0]).knn(q, 3)] == \
            [n.object_id for n in router.engine(ids[0]).knn(q, 3)]

    def test_eviction_writes_back_updates(self, catalog, two_venues):
        router, ids = make_router(catalog, two_venues, capacity=1)
        (mall, _), vid = two_venues[0], ids[0]
        q = sample_points(mall, 1, seed=4)[0]
        before = [n.object_id for n in router.execute(
            ServingRequest(venue=vid, kind="knn", source=q, k=3))]
        # land an update on the mall engine, then force its eviction
        new_id = router.execute(ServingRequest(
            venue=vid, kind="update", op=UpdateOp("insert", location=q, label="kiosk")))
        router.engine(ids[1])  # capacity 1 -> evicts the mall engine
        stats = router.stats()
        assert stats.evictions >= 1 and stats.write_backs >= 1 and stats.pooled == 1
        # reloading the mall venue must see the written-back insert
        after = router.execute(ServingRequest(venue=vid, kind="knn", source=q, k=3))
        assert after[0].object_id == new_id and after[0].distance == 0.0
        assert before != [n.object_id for n in after]

    def test_concurrent_warm_start_builds_once(self, catalog, two_venues):
        builds = []
        build_lock = threading.Lock()

        def counting_builder(space):
            with build_lock:
                builds.append(space.name)
            return VIPTree.build(space)

        router = VenueRouter(catalog, capacity=4)
        space, objects = two_venues[0]
        vid = router.add_venue(space, objects=objects, builder=counting_builder)
        engines = []

        def grab():
            engines.append(router.engine(vid))

        threads = [threading.Thread(target=grab) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert len(builds) == 1, f"cold build ran {len(builds)} times"
        assert len({id(e) for e in engines}) == 1, "pool must share one engine"

    def test_flush_writes_updated_engines(self, catalog, two_venues):
        router, ids = make_router(catalog, two_venues, capacity=4)
        (mall, _), vid = two_venues[0], ids[0]
        q = sample_points(mall, 1, seed=9)[0]
        router.execute(ServingRequest(venue=vid, kind="update",
                                      op=UpdateOp("insert", location=q)))
        router.engine(ids[1])  # untouched engine must not be flushed
        assert router.flush() == 1
        assert router.stats().write_backs == 1
        # clean engines are not re-serialized: repeat flush is a no-op
        assert router.flush() == 0
        # a new update re-dirties exactly that engine
        router.execute(ServingRequest(venue=vid, kind="update",
                                      op=UpdateOp("insert", location=q)))
        assert router.flush() == 1 and router.flush() == 0

    def test_rewarmed_engine_dirty_tracking_resets(self, catalog, two_venues):
        """After eviction + write-back, a re-warm-started engine's
        first new update must be flushable (the watermark resets with
        the fresh engine's counter)."""
        router, ids = make_router(catalog, two_venues, capacity=1)
        (mall, _), vid = two_venues[0], ids[0]
        q = sample_points(mall, 1, seed=10)[0]
        router.execute(ServingRequest(venue=vid, kind="update",
                                      op=UpdateOp("insert", location=q)))
        router.engine(ids[1])          # evicts + writes back the mall engine
        assert router.stats().write_backs == 1
        new_id = router.execute(ServingRequest(      # re-warm-starts it
            venue=vid, kind="update", op=UpdateOp("insert", location=q)))
        assert router.flush() == 1      # the new update must be persisted
        fresh, _ = make_router(catalog, two_venues, capacity=4)
        assert fresh.engine(vid).objects.get(new_id) is not None


# ----------------------------------------------------------------------
# ServingFrontend (driven against a controllable fake router)
# ----------------------------------------------------------------------
class FakeRouter:
    """Scriptable stand-in: blocks on demand, fails on demand."""

    def __init__(self):
        self.block = threading.Event()
        self.block.set()  # unblocked by default
        self.executed: list[ServingRequest] = []
        self._mutex = threading.Lock()

    def execute(self, request):
        assert self.block.wait(timeout=10)
        with self._mutex:
            self.executed.append(request)
        if request.kind == "boom":
            raise RuntimeError("scripted failure")
        return ("ok", request.venue, request.kind)


def req(kind="distance", venue="v"):
    return ServingRequest(venue=venue, kind=kind)


class TestServingFrontend:
    def test_results_travel_via_futures(self):
        router = FakeRouter()
        with ServingFrontend(router, workers=2, queue_size=8) as fe:
            futures = [fe.submit(req(venue=f"v{i}")) for i in range(6)]
            assert [f.result(timeout=5) for f in futures] == \
                [("ok", f"v{i}", "distance") for i in range(6)]
            stats = fe.stats()
            assert stats.submitted == 6 and stats.completed == 6 and stats.failed == 0

    def test_request_failure_does_not_kill_worker(self):
        router = FakeRouter()
        with ServingFrontend(router, workers=1, queue_size=8) as fe:
            bad = fe.submit(req(kind="boom"))
            good = fe.submit(req())
            with pytest.raises(RuntimeError, match="scripted failure"):
                bad.result(timeout=5)
            assert good.result(timeout=5)[0] == "ok"
            assert fe.stats().failed == 1

    def test_submit_requires_started_frontend(self):
        fe = ServingFrontend(FakeRouter(), workers=1)
        with pytest.raises(ServingError):
            fe.submit(req())

    def test_backpressure_timeout_raises(self):
        router = FakeRouter()
        router.block.clear()  # worker wedges on the first request
        fe = ServingFrontend(router, workers=1, queue_size=1).start()
        try:
            fe.submit(req())          # taken by the worker (blocked)
            fe.submit(req())          # fills the queue
            with pytest.raises(ServingError, match="backpressure"):
                fe.submit(req(), timeout=0.05)
            assert fe.stats().rejected == 1
        finally:
            router.block.set()
            fe.shutdown()

    def test_shutdown_without_drain_cancels_backlog(self):
        router = FakeRouter()
        router.block.clear()
        fe = ServingFrontend(router, workers=1, queue_size=8).start()
        running = fe.submit(req())
        # The contract only guarantees completion for requests already
        # *executing* at shutdown — wait until the worker has actually
        # picked this one up before queueing the backlog behind it.
        deadline = time.monotonic() + 5
        while not running.running() and time.monotonic() < deadline:
            time.sleep(0.001)
        assert running.running()
        queued = [fe.submit(req()) for _ in range(3)]
        shutter = threading.Thread(target=fe.shutdown, kwargs={"drain": False})
        shutter.start()
        # Unblock the in-flight request only once the cancel sweep has
        # emptied the backlog, so the worker can never pick up a queued
        # request the sweep hadn't reached yet.
        deadline = time.monotonic() + 5
        while not all(f.cancelled() for f in queued) and time.monotonic() < deadline:
            time.sleep(0.001)
        router.block.set()  # let the in-flight request finish
        shutter.join(timeout=5)
        assert running.result(timeout=5)[0] == "ok"
        assert all(f.cancelled() for f in queued)
        with pytest.raises(ServingError):
            fe.submit(req())

    def test_drain_waits_for_backlog(self):
        router = FakeRouter()
        with ServingFrontend(router, workers=2, queue_size=32) as fe:
            futures = [fe.submit(req(venue=f"v{i}")) for i in range(20)]
            fe.drain()
            assert all(f.done() for f in futures)

    def test_worker_count_validated(self):
        with pytest.raises(ServingError):
            ServingFrontend(FakeRouter(), workers=0)


# ----------------------------------------------------------------------
# Replay equivalence (the headline guarantee)
# ----------------------------------------------------------------------
def _normalize(value):
    if isinstance(value, list):
        return [(n.distance, n.object_id) for n in value]
    if hasattr(value, "doors"):
        return (value.distance, tuple(value.doors))
    return value


@pytest.mark.parametrize("workers", [2, 4])
def test_concurrent_replay_identical_to_sequential(catalog, two_venues, workers):
    streams = multi_venue_streams(
        two_venues, 80, update_ratio=0.5, churn=0.2, seed=13,
        mix={"knn": 0.4, "distance": 0.2, "range": 0.2, "path": 0.2},
    )
    router_a, ids = make_router(catalog, two_venues, capacity=4)
    keyed = dict(zip(ids, streams))
    sequential, seq_report = sequential_replay(router_a, keyed)

    router_b, ids_b = make_router(catalog, two_venues, capacity=4)
    assert ids_b == ids
    with ServingFrontend(router_b, workers=workers, queue_size=32) as frontend:
        concurrent, conc_report = concurrent_replay(frontend, keyed)

    assert seq_report.events == conc_report.events == 2 * 80
    assert seq_report.updates == conc_report.updates > 0
    for vid in ids:
        for i, (a, b) in enumerate(zip(sequential[vid], concurrent[vid])):
            assert _normalize(a) == _normalize(b), f"venue {vid[:8]} event {i} diverged"


def test_multi_venue_streams_deterministic_and_independent(two_venues):
    a = multi_venue_streams(two_venues, 50, update_ratio=0.5, seed=21)
    b = multi_venue_streams(two_venues, 50, update_ratio=0.5, seed=21)
    assert len(a) == len(b) == 2 and all(len(s) == 50 for s in a)
    for sa, sb in zip(a, b):
        assert [type(e).__name__ for e in sa] == [type(e).__name__ for e in sb]
    c = multi_venue_streams(two_venues, 50, update_ratio=0.5, seed=22)
    assert [type(e).__name__ for e in a[0]] != [type(e).__name__ for e in c[0]] or \
        a[0] is not c[0]  # different seed, different stream (shape may rarely match)
    with pytest.raises(ValueError):
        multi_venue_streams(two_venues, -1)
