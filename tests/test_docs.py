"""Docs stay executable: README/ARCHITECTURE snippets and links.

Runs ``tools/check_docs.py`` (the same check CI's docs job runs): every
fenced ```python block in the two documents must execute against the
current code, and every relative link must resolve.
"""

import os
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).parent.parent


def test_docs_snippets_and_links():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_docs.py"), "README.md", "ARCHITECTURE.md"],
        capture_output=True,
        text=True,
        env=env,
        cwd=ROOT,
    )
    assert proc.returncode == 0, f"docs check failed:\n{proc.stdout}\n{proc.stderr}"
    assert "README.md" in proc.stdout and "ARCHITECTURE.md" in proc.stdout
