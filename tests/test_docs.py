"""Docs stay executable: every repo markdown's snippets and links.

Runs ``tools/check_docs.py`` in discovery mode (the same invocation
CI's docs job uses): every fenced ```python block in every discovered
``*.md`` — top-level files and ``docs/`` alike — must execute against
the current code, and every relative link must resolve.
"""

import os
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).parent.parent
sys.path.insert(0, str(ROOT / "tools"))

from check_docs import EXCLUDED_NAMES, discover_markdown  # noqa: E402


def test_discovery_covers_docs_and_top_level():
    found = discover_markdown()
    assert "README.md" in found and "ARCHITECTURE.md" in found
    assert "docs/serving.md" in found and "docs/benchmarks.md" in found
    assert "ISSUE.md" not in found and "ISSUE.md" in EXCLUDED_NAMES
    assert not any(part.startswith(".") for f in found for part in Path(f).parts)


def test_docs_snippets_and_links():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_docs.py")],
        capture_output=True,
        text=True,
        env=env,
        cwd=ROOT,
    )
    assert proc.returncode == 0, f"docs check failed:\n{proc.stdout}\n{proc.stderr}"
    for required in ("README.md", "ARCHITECTURE.md",
                     os.path.join("docs", "serving.md"),
                     os.path.join("docs", "benchmarks.md")):
        assert required in proc.stdout, f"{required} not checked"
