"""DistMx baseline: exactness, path recovery, the no-through optimization."""

import pytest

from repro import IndoorPoint, IndoorSpaceBuilder, make_object_set
from repro.baselines import DijkstraOracle, DistanceMatrix, DistMxObjects

from repro.testing import sample_points


@pytest.fixture(scope="module")
def mx(fig1_space, fig1_iptree):
    return DistanceMatrix(fig1_space, fig1_iptree.d2d)


class TestDoorMatrix:
    def test_distances_match_oracle(self, mx, fig1_oracle, fig1_space):
        step = max(1, fig1_space.num_doors // 8)
        for da in range(0, fig1_space.num_doors, step):
            for db in range(0, fig1_space.num_doors, step * 2 + 1):
                assert mx.door_distance(da, db) == pytest.approx(
                    fig1_oracle.shortest_distance(da, db), abs=1e-9
                )

    def test_diagonal_zero(self, mx, fig1_space):
        for d in range(fig1_space.num_doors):
            assert mx.door_distance(d, d) == 0.0

    def test_symmetric(self, mx, fig1_space):
        n = fig1_space.num_doors
        for da in range(0, n, 3):
            for db in range(1, n, 5):
                assert mx.door_distance(da, db) == pytest.approx(
                    mx.door_distance(db, da), abs=1e-9
                )

    def test_door_path_valid(self, mx, fig1_space):
        ext = [d for d in range(fig1_space.num_doors) if fig1_space.is_exterior_door(d)]
        path = mx.door_path(ext[0], ext[1])
        assert path[0] == ext[0] and path[-1] == ext[1]
        total = sum(
            mx.d2d.edge_weight(x, y) for x, y in zip(path, path[1:])
        )
        assert total == pytest.approx(mx.door_distance(ext[0], ext[1]), abs=1e-9)

    def test_memory_quadratic(self, mx, fig1_space):
        n = fig1_space.num_doors
        assert mx.memory_bytes() >= n * n * 12

    def test_build_time_recorded(self, mx):
        assert mx.build_seconds > 0


class TestPointQueries:
    def test_matches_oracle(self, mx, fig1_oracle, fig1_space):
        pts = sample_points(fig1_space, 12, seed=61)
        for s, t in zip(pts[:6], pts[6:]):
            assert mx.shortest_distance(s, t) == pytest.approx(
                fig1_oracle.shortest_distance(s, t), abs=1e-9
            )

    def test_unoptimized_same_answer_more_pairs(self, mx, fig1_space):
        pts = sample_points(fig1_space, 12, seed=62)
        total_opt = total_unopt = 0
        for s, t in zip(pts[:6], pts[6:]):
            d_opt, p_opt = mx.distance_query(s, t, optimized=True)
            d_unopt, p_unopt = mx.distance_query(s, t, optimized=False)
            assert d_opt == pytest.approx(d_unopt, abs=1e-9)
            total_opt += p_opt
            total_unopt += p_unopt
        assert total_opt <= total_unopt

    def test_optimization_reduces_pairs_on_hallways(self, mx, fig1_space):
        # hallway-to-hallway queries see the full reduction: most hallway
        # doors lead to no-through rooms
        halls = fig1_space.fixture_halls
        s = IndoorPoint(halls[0], 5.0, 0.5)
        t = IndoorPoint(halls[3], 65.0, 0.5)
        _, p_opt = mx.distance_query(s, t, optimized=True)
        _, p_unopt = mx.distance_query(s, t, optimized=False)
        assert p_opt < p_unopt

    def test_shortest_path_length(self, mx, fig1_oracle, fig1_space):
        pts = sample_points(fig1_space, 8, seed=63)
        for s, t in zip(pts[:4], pts[4:]):
            d, doors = mx.shortest_path(s, t)
            assert d == pytest.approx(fig1_oracle.shortest_distance(s, t), abs=1e-9)
            for x, y in zip(doors, doors[1:]):
                assert mx.d2d.has_edge(x, y)

    def test_target_in_no_through_partition(self, fig1_space, mx, fig1_oracle):
        """Regression: the no-through pruning must keep doors that lead
        to the *other endpoint's* partition."""
        hall = fig1_space.fixture_halls[1]
        room = fig1_space.fixture_rooms[1][2]  # single-door room off hall 1
        s = IndoorPoint(hall, 25.0, 0.5)
        t = IndoorPoint(room, 27.0, 2.0)
        assert mx.shortest_distance(s, t) == pytest.approx(
            fig1_oracle.shortest_distance(s, t), abs=1e-9
        )


class TestDistMxObjects:
    def test_knn_matches_oracle(self, mx, fig1_space, fig1_oracle, fig1_objects):
        mo = DistMxObjects(mx, fig1_objects)
        for q in sample_points(fig1_space, 5, seed=64):
            got = mo.knn(q, 3)
            expected = fig1_oracle.knn(q, fig1_objects, 3)
            assert [round(d, 8) for d, _ in got] == pytest.approx(
                [round(d, 8) for d, _ in expected], abs=1e-7
            )

    def test_range_matches_oracle(self, mx, fig1_space, fig1_oracle, fig1_objects):
        mo = DistMxObjects(mx, fig1_objects)
        for q in sample_points(fig1_space, 5, seed=65):
            got = {(round(d, 8), i) for d, i in mo.range_query(q, 30.0)}
            expected = {
                (round(d, 8), i) for d, i in fig1_oracle.range_query(q, fig1_objects, 30.0)
            }
            assert got == expected

    def test_query_in_object_partition(self, mx, fig1_space, fig1_objects):
        obj = fig1_objects[0]
        q = IndoorPoint(obj.location.partition_id, obj.location.x + 3.0, obj.location.y + 4.0)
        (d, oid), *_ = mo_res = DistMxObjects(mx, fig1_objects).knn(q, 1)
        assert oid == obj.object_id
        assert d == pytest.approx(5.0)

    def test_object_behind_no_through_door(self):
        """Object inside a no-through room reachable only through a door
        the query-side pruning would normally drop."""
        b = IndoorSpaceBuilder()
        hall = b.add_hallway(floor=0)
        rooms = [b.add_room(floor=0) for _ in range(6)]
        for i, r in enumerate(rooms):
            b.add_door(hall, r, x=float(i), y=1.0)
        b.add_exterior_door(hall, x=-1.0, y=0.0)
        space = b.build()
        mx = DistanceMatrix(space)
        objects = make_object_set(space, [IndoorPoint(rooms[3], 3.0, 2.0)])
        mo = DistMxObjects(mx, objects)
        oracle = DijkstraOracle(space, mx.d2d)
        q = IndoorPoint(rooms[0], 0.0, 2.0)
        got = mo.knn(q, 1)
        expected = oracle.knn(q, objects, 1)
        assert got[0][0] == pytest.approx(expected[0][0], abs=1e-9)
