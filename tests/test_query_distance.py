"""Shortest-distance queries vs the Dijkstra oracle (IP and VIP trees)."""

import pytest

from repro import IndoorPoint, IPTree, QueryError, VIPTree
from repro.baselines import DijkstraOracle

from repro.testing import sample_points


@pytest.fixture(scope="module", params=["fig1", "tower", "office", "campus"])
def setting(request, all_fixture_spaces):
    space = all_fixture_spaces[request.param]
    ip = IPTree.build(space)
    vip = VIPTree.build(space)
    oracle = DijkstraOracle(space, ip.d2d)
    return space, ip, vip, oracle


class TestPointQueries:
    def test_random_pairs_match_oracle(self, setting):
        space, ip, vip, oracle = setting
        points = sample_points(space, 16, seed=11)
        for i, s in enumerate(points):
            for t in points[i + 1 :: 3]:
                expected = oracle.shortest_distance(s, t)
                assert ip.shortest_distance(s, t) == pytest.approx(expected, abs=1e-9)
                assert vip.shortest_distance(s, t) == pytest.approx(expected, abs=1e-9)

    def test_symmetry(self, setting):
        space, ip, vip, _ = setting
        pts = sample_points(space, 8, seed=2)
        for s, t in zip(pts[:4], pts[4:]):
            assert ip.shortest_distance(s, t) == pytest.approx(
                ip.shortest_distance(t, s), abs=1e-9
            )
            assert vip.shortest_distance(s, t) == pytest.approx(
                vip.shortest_distance(t, s), abs=1e-9
            )

    def test_same_point_zero(self, setting):
        space, ip, vip, _ = setting
        p = sample_points(space, 1, seed=4)[0]
        assert ip.shortest_distance(p, p) == pytest.approx(0.0, abs=1e-12)
        assert vip.shortest_distance(p, p) == pytest.approx(0.0, abs=1e-12)

    def test_same_partition_is_direct(self, fig1_space, fig1_iptree):
        room = fig1_space.fixture_rooms[0][0]
        a, b = IndoorPoint(room, 0.0, 0.0), IndoorPoint(room, 3.0, 4.0)
        assert fig1_iptree.shortest_distance(a, b) == pytest.approx(5.0)

    def test_identity_on_ip_equals_vip(self, setting):
        space, ip, vip, _ = setting
        pts = sample_points(space, 10, seed=9)
        for s, t in zip(pts[:5], pts[5:]):
            assert ip.shortest_distance(s, t) == pytest.approx(
                vip.shortest_distance(s, t), abs=1e-9
            )


class TestDoorQueries:
    def test_door_to_door_matches_oracle(self, setting):
        space, ip, vip, oracle = setting
        doors = list(range(0, space.num_doors, max(1, space.num_doors // 10)))
        for i, da in enumerate(doors):
            for db in doors[i + 1 :: 2]:
                expected = oracle.shortest_distance(da, db)
                assert ip.shortest_distance(da, db) == pytest.approx(expected, abs=1e-9)
                assert vip.shortest_distance(da, db) == pytest.approx(expected, abs=1e-9)

    def test_same_door_zero(self, setting):
        _, ip, vip, _ = setting
        assert ip.shortest_distance(0, 0) == 0.0
        assert vip.shortest_distance(0, 0) == 0.0

    def test_door_to_point(self, setting):
        space, ip, vip, oracle = setting
        p = sample_points(space, 1, seed=31)[0]
        door = space.num_doors - 1
        expected = oracle.shortest_distance(door, p)
        assert ip.shortest_distance(door, p) == pytest.approx(expected, abs=1e-9)
        assert vip.shortest_distance(door, p) == pytest.approx(expected, abs=1e-9)


class TestValidation:
    def test_unknown_partition(self, fig1_iptree):
        with pytest.raises(QueryError):
            fig1_iptree.shortest_distance(IndoorPoint(9999, 0, 0), 0)

    def test_unknown_door(self, fig1_iptree):
        with pytest.raises(QueryError):
            fig1_iptree.shortest_distance(0, 10_000)

    def test_bad_type(self, fig1_iptree):
        with pytest.raises(QueryError):
            fig1_iptree.shortest_distance("door-1", 0)


class TestQueryStats:
    def test_cross_leaf_counts_pairs(self, fig1_space, fig1_viptree):
        rooms = fig1_space.fixture_rooms
        s = IndoorPoint(rooms[0][0], 1.0, 1.0)
        t = IndoorPoint(rooms[3][4], 70.0, 1.0)
        res = fig1_viptree.distance_query(s, t)
        assert res.stats.pairs_considered >= 1
        assert res.stats.superior_pairs >= 1
        assert not res.stats.same_leaf

    def test_same_leaf_flag(self, fig1_space, fig1_viptree):
        rooms = fig1_space.fixture_rooms
        s = IndoorPoint(rooms[0][0], 1.0, 1.0)
        t = IndoorPoint(rooms[0][1], 4.0, 1.0)
        res = fig1_viptree.distance_query(s, t)
        assert res.stats.same_leaf


class TestSuperiorDoors:
    def test_local_access_doors_are_superior(self, fig1_iptree):
        tree = fig1_iptree
        for node in tree.nodes:
            if not node.is_leaf:
                continue
            access = set(node.access_doors)
            for pid in node.partitions:
                part_doors = set(tree.space.partitions[pid].door_ids)
                for d in part_doors & access:
                    assert d in tree.superior_doors[pid]

    def test_superior_subset_of_partition_doors(self, fig1_iptree):
        tree = fig1_iptree
        for pid in range(tree.space.num_partitions):
            assert set(tree.superior_doors[pid]) <= set(
                tree.space.partitions[pid].door_ids
            )

    def test_superior_door_formula_is_exact(self, tower_space, tower_iptree, tower_oracle):
        """Distances via superior doors only == distances via all doors."""
        pts = sample_points(tower_space, 12, seed=77)
        for s, t in zip(pts[:6], pts[6:]):
            assert tower_iptree.shortest_distance(s, t) == pytest.approx(
                tower_oracle.shortest_distance(s, t), abs=1e-9
            )

    def test_superior_counts_small(self, office_space):
        tree = IPTree.build(office_space)
        s = tree.stats()
        # the paper observes avg < 4 even for hundred-door hallways
        assert s.avg_superior_doors < 5
