"""The sharded serving stack: PeriodicFlusher, ShardProcess, cluster.

Covers the worker and cluster layers end to end with real child
processes: wire-exact answers vs a local router, exception classes
surviving the socket, backpressure on the in-flight window, fault
injection (``crash``) → automatic restart warm-started from snapshots,
the documented durability window (updates since the last flush are
lost, flushed ones are not), and the background flusher that bounds
that window.
"""

from __future__ import annotations

import time

import pytest

from repro.datasets import (
    build_mall,
    build_office,
    multi_venue_streams,
    random_objects,
    random_point,
)
from repro.exceptions import ProtocolError, QueryError, ServingError
from repro.model.io_json import objects_to_dict, space_to_dict
from repro.model.objects import UpdateOp
from repro.serving import (
    ClusterFrontend,
    PeriodicFlusher,
    Request,
    ShardProcess,
    VenueRouter,
    sequential_replay,
)
from repro.serving.protocol import result_to_doc
from repro.serving.__main__ import main as serving_cli
from repro.storage import SnapshotCatalog

import random

# Real child processes + sockets: wedges fail fast with a stack dump.
pytestmark = pytest.mark.net_guard


def wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# ----------------------------------------------------------------------
# PeriodicFlusher
# ----------------------------------------------------------------------
class CountingRouter:
    """Stub with the only method the flusher touches."""

    def __init__(self, written=1, raises=False):
        self.calls = 0
        self.written = written
        self.raises = raises

    def flush(self) -> int:
        self.calls += 1
        if self.raises:
            raise OSError("catalog unwritable")
        return self.written


class TestPeriodicFlusher:
    def test_flushes_periodically_until_stopped(self):
        router = CountingRouter(written=2)
        flusher = PeriodicFlusher(router, interval=0.02, seed=0).start()
        assert flusher.running
        assert wait_until(lambda: flusher.cycles >= 3)
        flusher.stop()
        assert not flusher.running
        settled = flusher.cycles
        assert flusher.written == 2 * settled and router.calls == settled
        time.sleep(0.06)
        assert flusher.cycles == settled  # thread really exited

    def test_errors_are_counted_and_do_not_stop_the_thread(self):
        router = CountingRouter(raises=True)
        flusher = PeriodicFlusher(router, interval=0.02, seed=0).start()
        assert wait_until(lambda: flusher.errors >= 2)
        flusher.stop()
        assert flusher.errors >= 2
        assert isinstance(flusher.last_error, OSError)
        assert flusher.written == 0

    def test_stop_with_final_flush_closes_the_window(self):
        router = CountingRouter(written=3)
        flusher = PeriodicFlusher(router, interval=60.0)
        flusher.start()
        flusher.stop(final_flush=True)
        assert flusher.written == 3 and router.calls >= 1

    def test_stop_is_idempotent_and_start_after_stop_is_a_noop(self):
        flusher = PeriodicFlusher(CountingRouter(), interval=60.0).start()
        flusher.stop()
        flusher.stop()
        flusher.start()  # stopped flushers stay stopped
        assert not flusher.running

    def test_validation(self):
        with pytest.raises(ServingError, match="interval"):
            PeriodicFlusher(CountingRouter(), interval=0.0)
        with pytest.raises(ServingError, match="jitter"):
            PeriodicFlusher(CountingRouter(), interval=1.0, jitter=1.0)

    def test_jitter_spreads_cycle_delays(self):
        flusher = PeriodicFlusher(CountingRouter(), interval=1.0,
                                  jitter=0.5, seed=7)
        delays = {flusher._delay() for _ in range(16)}
        assert len(delays) > 1
        assert all(0.5 <= d <= 1.5 for d in delays)
        flusher.stop()


class TestRouterAutoFlush:
    def test_start_is_idempotent_and_stop_replaceable(self, tmp_path):
        router = VenueRouter(SnapshotCatalog(tmp_path / "cat"))
        first = router.start_auto_flush(60.0)
        assert router.start_auto_flush(60.0) is first
        router.stop_auto_flush()
        assert not first.running
        second = router.start_auto_flush(60.0)
        assert second is not first and second.running
        router.stop_auto_flush()
        router.stop_auto_flush()  # idempotent

    def test_background_flush_persists_updates(self, tmp_path):
        space = build_mall("tiny", name="flush-mall")
        objects = random_objects(space, 8, seed=3)
        router = VenueRouter(SnapshotCatalog(tmp_path / "cat"), capacity=2)
        vid = router.add_venue(space, objects=objects)
        new_id = router.execute(Request(
            venue=vid, kind="update",
            op=UpdateOp(kind="insert",
                        location=random_point(space, random.Random(1)),
                        label="cart", category="cart"),
        ))
        flusher = router.start_auto_flush(0.05, seed=1)
        assert wait_until(lambda: flusher.written >= 1)
        router.stop_auto_flush()

        # A fresh router over the same catalog sees the inserted object:
        # deleting it succeeds instead of raising QueryError.
        reloaded = VenueRouter(SnapshotCatalog(tmp_path / "cat"), capacity=2)
        reloaded.add_venue(space)
        reloaded.execute(Request(
            venue=vid, kind="update",
            op=UpdateOp(kind="delete", object_id=new_id),
        ))


# ----------------------------------------------------------------------
# ShardProcess (one worker process over a socket)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def shard_venue():
    space = build_mall("tiny", name="shard-mall")
    return space, random_objects(space, 12, seed=9)


def venue_payload(space, objects=None, kind="VIP-Tree"):
    return {
        "space": space_to_dict(space),
        "objects": objects_to_dict(objects) if objects is not None else None,
        "kind": kind,
    }


@pytest.fixture()
def shard(tmp_path):
    handle = ShardProcess(tmp_path / "cat", flush_interval=0).start()
    yield handle
    handle.shutdown()


class TestShardProcess:
    def test_answers_match_a_local_router_wire_exactly(self, tmp_path, shard_venue):
        space, objects = shard_venue
        stream = multi_venue_streams(
            [(space, random_objects(space, 12, seed=9))], 60,
            update_ratio=0.25, churn=0.2, seed=13,
        )[0]
        local = VenueRouter(SnapshotCatalog(tmp_path / "local"), capacity=2)
        vid = local.add_venue(space, objects=random_objects(space, 12, seed=9))

        shard = ShardProcess(tmp_path / "shard", flush_interval=0).start()
        try:
            echoed = shard.call(Request(
                venue=vid, kind="add_venue",
                payload=venue_payload(space, random_objects(space, 12, seed=9)),
            ))
            assert echoed == vid
            for i, event in enumerate(stream):
                request = Request.from_event(vid, event)
                mine = local.execute(request)
                theirs = shard.call(request, timeout=60.0)
                assert result_to_doc(mine) == result_to_doc(theirs), \
                    f"event {i} ({request.kind}) diverged over the wire"
        finally:
            shard.shutdown()

    def test_ping_and_stats_documents(self, shard, shard_venue):
        space, objects = shard_venue
        pong = shard.call(Request(venue="", kind="ping"))
        assert pong["venues"] == 0 and pong["pid"] != 0
        shard.call(Request(venue="x", kind="add_venue",
                           payload=venue_payload(space, objects)))
        stats = shard.call(Request(venue="", kind="stats"))
        assert stats["requests"] >= 2
        assert stats["router"]["venues"] == 1
        assert stats["flusher"] is None  # flush_interval=0 disables it

    def test_default_flush_interval_starts_the_flusher(self, tmp_path):
        shard = ShardProcess(tmp_path / "cat").start()
        try:
            stats = shard.call(Request(venue="", kind="stats"))
            assert stats["flusher"] is not None
            assert stats["flusher"]["interval"] == pytest.approx(30.0)
        finally:
            shard.shutdown()

    def test_exception_classes_survive_the_socket(self, shard, shard_venue):
        space, objects = shard_venue
        with pytest.raises(ServingError, match="unknown venue"):
            shard.call(Request(venue="nope", kind="distance"))
        vid = shard.call(Request(venue="x", kind="add_venue",
                                 payload=venue_payload(space, objects)))
        with pytest.raises(QueryError, match="not in the index"):
            shard.call(Request(
                venue=vid, kind="update",
                op=UpdateOp(kind="delete", object_id=10_000),
            ))
        with pytest.raises(ServingError, match="unknown request kind"):
            shard.call(Request(venue=vid, kind="teleport"))
        with pytest.raises(ProtocolError, match="no venue document"):
            shard.call(Request(venue="x", kind="add_venue"))
        # the connection survived all of it
        assert shard.alive
        assert shard.call(Request(venue="", kind="ping"))["venues"] == 1

    def test_backpressure_blocks_then_raises(self, tmp_path, shard_venue):
        space, objects = shard_venue
        slow_space = build_office("small", name="slow-office")
        shard = ShardProcess(tmp_path / "cat", flush_interval=0,
                             max_inflight=1).start()
        try:
            vid = shard.call(Request(
                venue="a", kind="add_venue",
                payload=venue_payload(slow_space,
                                      random_objects(slow_space, 5, seed=2)),
            ))
            # The venue's first query cold-builds its index — slow —
            # and occupies the only in-flight slot...
            probe = random_point(slow_space, random.Random(2))
            slow = shard.submit(Request(venue=vid, kind="knn",
                                        source=probe, k=1))
            # ...so the next submit cannot enter the window in 10ms.
            with pytest.raises(ServingError, match="backpressure"):
                shard.submit(Request(venue="", kind="ping"), timeout=0.01)
            assert len(slow.result(timeout=120)) == 1
            assert shard.call(Request(venue="", kind="ping"))["venues"] == 1
        finally:
            shard.shutdown()
        with pytest.raises(ServingError, match="max_inflight"):
            ShardProcess(tmp_path / "cat", max_inflight=0)

    def test_unencodable_request_fails_alone_without_killing_the_shard(
            self, tmp_path):
        shard = ShardProcess(tmp_path / "cat", flush_interval=0,
                             max_inflight=1).start()
        try:
            for _ in range(3):  # would deadlock if the slot leaked
                future = shard.submit(Request(
                    venue="", kind="stats", payload={"bad": object()},
                ))
                with pytest.raises(ServingError, match="not encodable"):
                    future.result(timeout=30)
            assert shard.alive  # nothing hit the wire; connection intact
            assert shard.call(Request(venue="", kind="ping"))["venues"] == 0
        finally:
            shard.shutdown()

    def test_crash_fails_inflight_and_marks_the_handle_dead(self, shard):
        future = shard.submit(Request(venue="", kind="crash"))
        with pytest.raises(ServingError, match="connection lost"):
            future.result(timeout=30)
        assert wait_until(lambda: not shard.alive)
        with pytest.raises(ServingError, match="not running"):
            shard.submit(Request(venue="", kind="ping"))

    def test_shutdown_is_graceful_and_idempotent(self, tmp_path):
        shard = ShardProcess(tmp_path / "cat", flush_interval=0).start()
        assert shard.call(Request(venue="", kind="ping"))
        shard.shutdown()
        shard.shutdown()
        assert not shard.alive
        assert shard.process.exitcode == 0
        with pytest.raises(ServingError, match="already started"):
            shard.start()


# ----------------------------------------------------------------------
# ClusterFrontend
# ----------------------------------------------------------------------
def make_venues():
    mall = build_mall("tiny", name="cluster-mall")
    office = build_office("tiny", name="cluster-office")
    return [(mall, random_objects(mall, 10, seed=21)),
            (office, random_objects(office, 8, seed=22))]


class TestClusterFrontend:
    def test_replay_identical_to_sequential(self, tmp_path):
        venues = make_venues()
        streams = multi_venue_streams(venues, 50, update_ratio=0.4,
                                      churn=0.2, seed=29)
        local = VenueRouter(SnapshotCatalog(tmp_path / "seq"), capacity=4)
        ids = [local.add_venue(s, objects=o) for s, o in venues]
        keyed = dict(zip(ids, streams))
        sequential, _ = sequential_replay(local, keyed)

        from repro.serving import concurrent_replay

        with ClusterFrontend(tmp_path / "cluster", shards=4) as cluster:
            for s, o in make_venues():  # fresh object sets: engines own them
                cluster.add_venue(s, objects=o)
            clustered, report = concurrent_replay(cluster, keyed)
        assert report.workers == 4
        for vid in ids:
            for a, b in zip(sequential[vid], clustered[vid]):
                assert result_to_doc(a) == result_to_doc(b)

    def test_unknown_venue_and_shutdown_refusals(self, tmp_path):
        cluster = ClusterFrontend(tmp_path / "cat", shards=2, flush_interval=0)
        with pytest.raises(ServingError, match="unknown venue"):
            cluster.submit(Request(venue="f" * 64, kind="ping"))
        cluster.shutdown()
        space, objects = make_venues()[0]
        with pytest.raises(ServingError, match="shut down"):
            cluster.add_venue(space, objects=objects)
        with pytest.raises(ServingError, match="shut down"):
            cluster.submit(Request(venue="f" * 64, kind="distance"))
        cluster.shutdown()  # idempotent

    def test_crash_restart_serves_correct_answers_again(self, tmp_path):
        venues = make_venues()
        rng = random.Random(5)
        probes = {i: random_point(venues[i][0], rng) for i in range(len(venues))}
        with ClusterFrontend(tmp_path / "cat", shards=2,
                             flush_interval=0) as cluster:
            ids = [cluster.add_venue(s, objects=o) for s, o in venues]
            before = {
                i: cluster.request(ids[i], "knn", source=probes[i], k=3).result()
                for i in range(len(venues))
            }
            with pytest.raises(ServingError):
                cluster.request(ids[0], "crash").result()
            assert wait_until(lambda: cluster.stats().alive < cluster.shards)

            after = {
                i: cluster.request(ids[i], "knn", source=probes[i], k=3).result()
                for i in range(len(venues))
            }
            assert cluster.stats().restarts == 1
            for i in before:
                assert result_to_doc(before[i]) == result_to_doc(after[i])

    def test_restart_disabled_turns_a_crash_into_an_error(self, tmp_path):
        venues = make_venues()
        with ClusterFrontend(tmp_path / "cat", shards=1, flush_interval=0,
                             restart=False) as cluster:
            vid = cluster.add_venue(venues[0][0], objects=venues[0][1])
            with pytest.raises(ServingError):
                cluster.request(vid, "crash").result()
            wait_until(lambda: cluster.stats().alive == 0)
            with pytest.raises(ServingError, match="restart is disabled"):
                cluster.request(vid, "ping")

    def test_durability_window_is_exactly_the_unflushed_updates(self, tmp_path):
        space, objects = make_venues()[0]
        rng = random.Random(11)

        def insert():
            return Request(
                venue=vid, kind="update",
                op=UpdateOp(kind="insert", location=random_point(space, rng),
                            label="cart", category="cart"),
            )

        def delete(object_id):
            return Request(venue=vid, kind="update",
                           op=UpdateOp(kind="delete", object_id=object_id))

        # oplog=False: this test pins down the *snapshot-only* durability
        # semantics; with the operation log on (the default) nothing
        # acknowledged is ever lost — tests/test_replication.py covers that.
        with ClusterFrontend(tmp_path / "cat", shards=1,
                             flush_interval=0, oplog=False) as cluster:
            vid = cluster.add_venue(space, objects=objects)
            kept = cluster.submit(insert()).result()
            assert cluster.flush() >= 1  # closes the window behind `kept`
            lost = cluster.submit(insert()).result()
            assert kept != lost
            with pytest.raises(ServingError):
                cluster.request(vid, "crash").result()
            wait_until(lambda: cluster.stats().alive == 0)

            # Restarted shard warm-starts from the flushed snapshot:
            # `kept` survived, `lost` is inside the durability window.
            with pytest.raises(QueryError, match="not in the index"):
                cluster.submit(delete(lost)).result()
            cluster.submit(delete(kept)).result()
            assert cluster.stats().restarts == 1

    def test_drain_barriers_and_stats_count(self, tmp_path):
        venues = make_venues()
        with ClusterFrontend(tmp_path / "cat", shards=2,
                             flush_interval=0) as cluster:
            ids = [cluster.add_venue(s, objects=o) for s, o in venues]
            rng = random.Random(3)
            futures = [
                cluster.request(ids[i % 2], "knn",
                                source=random_point(venues[i % 2][0], rng), k=2)
                for i in range(12)
            ]
            cluster.drain()
            assert all(f.done() for f in futures)
            stats = cluster.stats()
            assert stats.submitted >= 12 and stats.venues == 2
            assert sum(stats.by_shard.values()) == 2
            assert len(cluster.shard_stats()) == stats.alive

    def test_shard_for_is_stable_and_validates(self, tmp_path):
        with pytest.raises(ServingError, match="shards"):
            ClusterFrontend(tmp_path / "cat", shards=0)
        with pytest.raises(ServingError, match="replication"):
            ClusterFrontend(tmp_path / "cat", shards=2, replication=0)
        with pytest.raises(ServingError, match="oplog"):
            ClusterFrontend(tmp_path / "cat", shards=2, replication=2,
                            oplog=False)
        # Placement comes from the consistent-hash ring: stable across
        # frontend instances over the same shard count, and always a
        # valid shard id.
        from repro.serving import HashRing

        ring = HashRing(range(3))
        cluster = ClusterFrontend(tmp_path / "cat", shards=3, flush_interval=0)
        try:
            for vid in ("ab12cd34ab12cd34ff", "00ff" * 16, "deadbeef"):
                assert cluster.shard_for(vid) == ring.node_for(vid)
                assert cluster.shard_for(vid) in (0, 1, 2)
        finally:
            cluster.shutdown()


# ----------------------------------------------------------------------
# CLI (python -m repro.serving)
# ----------------------------------------------------------------------
def test_cli_serves_and_self_tests_over_tcp(tmp_path, capsys):
    rc = serving_cli([
        "serve", "--catalog", str(tmp_path / "cat"), "--venue", "MC",
        "--profile", "tiny", "--shards", "2", "--port", "0",
        "--events", "30", "--seed", "3",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "serving 1 venue(s)" in out
    assert "events/s" in out


def test_cli_batched_self_test_with_admission(tmp_path, capsys):
    rc = serving_cli([
        "serve", "--catalog", str(tmp_path / "cat"), "--venue", "MC",
        "--profile", "tiny", "--shards", "2", "--port", "0",
        "--events", "30", "--seed", "3", "--batch", "10",
        "--admission-rate", "10000", "--shed-depth", "64",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "admission rate=10000.0/s" in out
    assert "batch=10" in out and "0 failed" in out
