"""Serialization round-trips and object-set semantics."""

import pytest

from repro import IndoorPoint, QueryError, VenueError, make_object_set
from repro.model.io_json import (
    load_space,
    objects_from_dict,
    objects_to_dict,
    save_space,
    space_from_dict,
    space_to_dict,
)
from repro.model.objects import IndoorObject, ObjectSet


class TestSpaceRoundTrip:
    def test_round_trip_preserves_structure(self, tower_space):
        clone = space_from_dict(space_to_dict(tower_space))
        assert clone.num_doors == tower_space.num_doors
        assert clone.num_partitions == tower_space.num_partitions
        assert clone.name == tower_space.name
        assert clone.floor_height == tower_space.floor_height
        for a, b in zip(clone.partitions, tower_space.partitions):
            assert a.kind == b.kind
            assert a.floor == b.floor
            assert a.door_ids == b.door_ids
            assert a.fixed_traversal == b.fixed_traversal
        for a, b in zip(clone.doors, tower_space.doors):
            assert a.position == b.position

    def test_round_trip_preserves_footprints(self, mall_space):
        clone = space_from_dict(space_to_dict(mall_space))
        for a, b in zip(clone.partitions, mall_space.partitions):
            if b.footprint is not None:
                assert a.footprint is not None
                assert a.footprint.x_min == b.footprint.x_min

    def test_round_trip_preserves_metric(self, tower_space):
        clone = space_from_dict(space_to_dict(tower_space))
        pid = next(
            p.partition_id for p in tower_space.partitions if len(p.door_ids) >= 2
        )
        d1, d2 = tower_space.partitions[pid].door_ids[:2]
        assert clone.partition_door_distance(pid, d1, d2) == pytest.approx(
            tower_space.partition_door_distance(pid, d1, d2)
        )

    def test_file_round_trip(self, tmp_path, fig1_space):
        path = tmp_path / "venue.json"
        save_space(fig1_space, path)
        clone = load_space(path)
        assert clone.num_doors == fig1_space.num_doors

    def test_bad_version_rejected(self, fig1_space):
        doc = space_to_dict(fig1_space)
        doc["version"] = 99
        with pytest.raises(VenueError):
            space_from_dict(doc)


class TestObjectsRoundTrip:
    def test_round_trip(self, fig1_objects):
        clone = objects_from_dict(objects_to_dict(fig1_objects))
        assert len(clone) == len(fig1_objects)
        for a, b in zip(clone, fig1_objects):
            assert a.location == b.location
            assert a.label == b.label
            assert a.category == b.category

    def test_bad_version_rejected(self, fig1_objects):
        doc = objects_to_dict(fig1_objects)
        doc["version"] = -1
        with pytest.raises(VenueError):
            objects_from_dict(doc)

    def test_round_trip_preserves_tombstoned_ids(self, fig1_space, fig1_objects):
        """Deleted ids — including trailing ones — survive serialization
        and are never re-assigned by the reloaded set."""
        import pickle

        objs = pickle.loads(pickle.dumps(fig1_objects))
        last = objs.capacity - 1
        objs.delete(1)
        objs.delete(last)
        clone = objects_from_dict(objects_to_dict(objs))
        assert clone.capacity == objs.capacity
        assert clone.live_ids() == objs.live_ids()
        assert clone.insert(objs[0].location) == objs.capacity  # not `last`


class TestObjectSet:
    def test_make_object_set_validates(self, fig1_space):
        with pytest.raises(QueryError):
            make_object_set(fig1_space, [IndoorPoint(99_999, 0, 0)])

    def test_dense_ids_required(self, fig1_space):
        objs = ObjectSet([IndoorObject(5, IndoorPoint(0, 0, 0))])
        with pytest.raises(QueryError):
            objs.validate(fig1_space)

    def test_by_category_reindexes(self, fig1_space):
        rooms = fig1_space.fixture_rooms
        objs = ObjectSet(
            [
                IndoorObject(0, IndoorPoint(rooms[0][0], 1, 1), category="atm"),
                IndoorObject(1, IndoorPoint(rooms[1][0], 1, 1), category="wc"),
                IndoorObject(2, IndoorPoint(rooms[2][0], 1, 1), category="atm"),
            ]
        )
        atms = objs.by_category("atm")
        assert len(atms) == 2
        assert [o.object_id for o in atms] == [0, 1]
        atms.validate(fig1_space)

    def test_partitions(self, fig1_objects):
        assert len(fig1_objects.partitions()) == len(fig1_objects)

    def test_iteration_and_indexing(self, fig1_objects):
        assert list(fig1_objects)[0] is fig1_objects[0]


class TestObjectFileRoundTrip:
    def test_save_load_objects_file(self, fig1_space, fig1_objects, tmp_path):
        import pickle

        from repro.model.io_json import load_objects, save_objects

        objs = pickle.loads(pickle.dumps(fig1_objects))
        objs.delete(2)
        objs.move(0, objs[1].location)
        path = tmp_path / "objects.json"
        save_objects(objs, path)
        clone = load_objects(path)
        assert clone.capacity == objs.capacity
        assert clone.version == objs.version
        assert clone.live_ids() == objs.live_ids()
        for oid in objs.live_ids():
            assert clone[oid] == objs[oid]

    def test_save_objects_deterministic_bytes(self, fig1_objects, tmp_path):
        from repro.model.io_json import save_objects

        a, b = tmp_path / "a.json", tmp_path / "b.json"
        save_objects(fig1_objects, a)
        save_objects(fig1_objects, b)
        assert a.read_bytes() == b.read_bytes()
