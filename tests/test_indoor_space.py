"""Unit tests for the IndoorSpace container and its metric."""

import pytest

from repro import IndoorPoint, IndoorSpaceBuilder, QueryError, VenueError
from repro.model.entities import Door, Partition, PartitionKind
from repro.model.geometry import Point
from repro.model.indoor_space import IndoorSpace


def two_room_space():
    b = IndoorSpaceBuilder(name="two")
    a = b.add_room(floor=0, label="a")
    c = b.add_room(floor=0, label="c")
    b.add_door(a, c, x=1.0, y=0.0)
    b.add_exterior_door(a, x=0.0, y=0.0)
    return b.build()


class TestValidation:
    def test_partition_id_mismatch(self):
        parts = [Partition(partition_id=5, door_ids=[0])]
        doors = [Door(door_id=0, position=Point(0, 0))]
        with pytest.raises(VenueError, match="does not match index"):
            IndoorSpace(parts, doors)

    def test_partition_without_doors(self):
        parts = [Partition(partition_id=0, door_ids=[])]
        with pytest.raises(VenueError, match="has no doors"):
            IndoorSpace(parts, [])

    def test_unknown_door_reference(self):
        parts = [Partition(partition_id=0, door_ids=[7])]
        doors = [Door(door_id=0, position=Point(0, 0))]
        with pytest.raises(VenueError, match="unknown door"):
            IndoorSpace(parts, doors)

    def test_duplicate_door_in_partition(self):
        parts = [Partition(partition_id=0, door_ids=[0, 0])]
        doors = [Door(door_id=0, position=Point(0, 0))]
        with pytest.raises(VenueError, match="twice"):
            IndoorSpace(parts, doors)

    def test_door_with_three_owners(self):
        parts = [
            Partition(partition_id=0, door_ids=[0]),
            Partition(partition_id=1, door_ids=[0]),
            Partition(partition_id=2, door_ids=[0]),
        ]
        doors = [Door(door_id=0, position=Point(0, 0))]
        with pytest.raises(VenueError, match="at most 2"):
            IndoorSpace(parts, doors)

    def test_orphan_door(self):
        parts = [Partition(partition_id=0, door_ids=[0])]
        doors = [
            Door(door_id=0, position=Point(0, 0)),
            Door(door_id=1, position=Point(1, 0)),
        ]
        with pytest.raises(VenueError, match="belongs to no partition"):
            IndoorSpace(parts, doors)

    def test_door_id_mismatch(self):
        parts = [Partition(partition_id=0, door_ids=[0])]
        doors = [Door(door_id=3, position=Point(0, 0))]
        with pytest.raises(VenueError, match="does not match index"):
            IndoorSpace(parts, doors)


class TestTopology:
    def test_door_partitions(self):
        space = two_room_space()
        assert space.partitions_of_door(0) == (0, 1)
        assert space.partitions_of_door(1) == (0,)

    def test_exterior_door(self):
        space = two_room_space()
        assert not space.is_exterior_door(0)
        assert space.is_exterior_door(1)

    def test_adjacent_partitions(self, fig1_space):
        halls = fig1_space.fixture_halls
        adj = fig1_space.adjacent_partitions(halls[0])
        assert halls[1] in adj
        # each fixture room off hall 0 is adjacent through exactly one door
        for room in fig1_space.fixture_rooms[0]:
            assert room in adj

    def test_common_doors_symmetric(self, fig1_space):
        halls = fig1_space.fixture_halls
        a = fig1_space.common_doors(halls[0], halls[1])
        b = fig1_space.common_doors(halls[1], halls[0])
        assert sorted(a) == sorted(b)
        assert len(a) == 1

    def test_hallway_ids(self, fig1_space):
        assert set(fig1_space.hallway_ids()) == set(fig1_space.fixture_halls)


class TestMetric:
    def test_partition_door_distance_euclidean(self, fig1_space):
        hall = fig1_space.fixture_halls[0]
        d1, d2 = fig1_space.partitions[hall].door_ids[:2]
        expected = fig1_space.doors[d1].position.distance(
            fig1_space.doors[d2].position, fig1_space.floor_height
        )
        assert fig1_space.partition_door_distance(hall, d1, d2) == pytest.approx(expected)

    def test_partition_door_distance_identity(self, fig1_space):
        hall = fig1_space.fixture_halls[0]
        d1 = fig1_space.partitions[hall].door_ids[0]
        assert fig1_space.partition_door_distance(hall, d1, d1) == 0.0

    def test_fixed_traversal_overrides(self):
        b = IndoorSpaceBuilder(name="lift")
        a = b.add_room(floor=0)
        c = b.add_room(floor=1)
        b.add_lift([a, c], x=0.0, y=0.0, floors=[0.0, 1.0], travel_weight=42.0)
        b.add_exterior_door(a, x=1.0, y=0.0)
        space = b.build()
        lift = next(
            p.partition_id for p in space.partitions if p.kind is PartitionKind.LIFT
        )
        d1, d2 = space.partitions[lift].door_ids
        assert space.partition_door_distance(lift, d1, d2) == 42.0

    def test_point_to_door_distance(self, fig1_space):
        room = fig1_space.fixture_rooms[0][0]
        door = fig1_space.partitions[room].door_ids[0]
        p = IndoorPoint(room, 0.0, 0.0)
        expected = Point(0.0, 0.0, 0.0).distance(
            fig1_space.doors[door].position, fig1_space.floor_height
        )
        assert fig1_space.point_to_door_distance(p, door) == pytest.approx(expected)

    def test_point_to_foreign_door_raises(self, fig1_space):
        room = fig1_space.fixture_rooms[0][0]
        other_room_door = fig1_space.partitions[fig1_space.fixture_rooms[1][0]].door_ids[0]
        with pytest.raises(QueryError):
            fig1_space.point_to_door_distance(IndoorPoint(room, 0, 0), other_room_door)

    def test_direct_point_distance_same_partition(self, fig1_space):
        room = fig1_space.fixture_rooms[0][0]
        a, b = IndoorPoint(room, 0.0, 0.0), IndoorPoint(room, 3.0, 4.0)
        assert fig1_space.direct_point_distance(a, b) == pytest.approx(5.0)

    def test_direct_point_distance_cross_partition_raises(self, fig1_space):
        a = IndoorPoint(fig1_space.fixture_rooms[0][0], 0, 0)
        b = IndoorPoint(fig1_space.fixture_rooms[0][1], 0, 0)
        with pytest.raises(QueryError):
            fig1_space.direct_point_distance(a, b)

    def test_validate_point_unknown_partition(self, fig1_space):
        with pytest.raises(QueryError):
            fig1_space.validate_point(IndoorPoint(10_000, 0, 0))


class TestStats:
    def test_counts(self, fig1_space):
        s = fig1_space.stats()
        assert s.num_doors == fig1_space.num_doors
        assert s.num_partitions == fig1_space.num_partitions
        assert s.num_floors == 1

    def test_directed_edges_formula(self):
        space = two_room_space()
        # partition a has 2 doors (2*1 edges), c has 1 door (0 edges)
        assert space.stats().num_d2d_edges == 2

    def test_outdoor_not_counted_as_room(self):
        b = IndoorSpaceBuilder(name="o")
        out = b.add_outdoor()
        room = b.add_room(floor=0)
        b.add_door(out, room, x=0.0, y=0.0)
        b.add_exterior_door(out, x=1.0, y=0.0)
        assert b.build().stats().num_rooms == 1

    def test_max_partition_degree(self, fig1_space):
        s = fig1_space.stats()
        hall_doors = max(
            len(fig1_space.partitions[h].door_ids) for h in fig1_space.fixture_halls
        )
        assert s.max_partition_degree == hall_doors
