"""The asyncio front door: wire-exact answers, batch semantics,
admission control over TCP, and adversarial client behavior.

One event loop multiplexes every connection, so the properties under
test are exactly the ones a thread-per-connection server got for free
plus the ones it couldn't give:

* answers over the wire are element-wise identical to direct cluster
  submission (and batch answers to sequential single frames),
* batch replies arrive in request order with per-element error
  isolation — including per-venue update→query ordering within a
  batch,
* a malformed or hostile client gets a typed error or a closed
  connection and **cannot wedge the loop**: the server must keep
  serving fresh connections after every abuse (hypothesis-fuzzed),
* admission-shed requests surface as typed ``OverloadedError`` replies
  with their retry-after hint, batchmates unaffected.
"""

from __future__ import annotations

import socket
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datasets import build_mall, random_objects, random_point
from repro.exceptions import OverloadedError, ProtocolError
from repro.model.objects import UpdateOp
from repro.serving import (
    AdmissionController,
    AsyncFrontDoor,
    ClusterFrontend,
    FrontDoorClient,
    Request,
)
from repro.serving.protocol import (
    ErrorResponse,
    encode_frame,
    recv_doc,
    request_to_doc,
    result_to_doc,
    send_doc,
)

import random

# Real sockets + an event-loop thread: wedges fail fast with a dump.
pytestmark = pytest.mark.net_guard


# ----------------------------------------------------------------------
# One served cluster for the module (admission tests build their own)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def served(tmp_path_factory):
    space = build_mall("tiny", name="door-mall")
    objects = random_objects(space, 12, seed=9)
    catalog = tmp_path_factory.mktemp("door-catalog")
    with ClusterFrontend(catalog, shards=2) as cluster:
        vid = cluster.add_venue(space, objects=objects)
        with AsyncFrontDoor(cluster, names={vid: space.name}) as door:
            yield cluster, door, space, vid


def _queries(space, vid, n, seed=3):
    rng = random.Random(seed)
    return [
        Request(venue=vid, kind="knn", source=random_point(space, rng), k=3)
        for _ in range(n)
    ]


def _raw_connection(door):
    sock = socket.create_connection(door.address, timeout=30.0)
    sock.settimeout(30.0)
    return sock


def _server_still_serves(door, vid) -> bool:
    """The liveness probe every abuse test ends on: a fresh connection
    gets a real answer."""
    with FrontDoorClient(door.address, timeout=30.0) as client:
        return client.call(Request(venue="", kind="ping")) == {"ok": True}


# ----------------------------------------------------------------------
# Wire-exact answers
# ----------------------------------------------------------------------
def test_single_frames_match_direct_submission(served):
    cluster, door, space, vid = served
    requests = _queries(space, vid, 12)
    direct = [result_to_doc(cluster.submit(r).result(timeout=30.0))
              for r in requests]
    with FrontDoorClient(door.address) as client:
        over_wire = [result_to_doc(client.call(r)) for r in requests]
    assert over_wire == direct


def test_batch_equals_sequential_singles(served):
    _, door, space, vid = served
    requests = _queries(space, vid, 16, seed=11)
    with FrontDoorClient(door.address) as client:
        singles = [client.call(r) for r in requests]
        ids = client.send_batch(requests)
        batch = client.recv_batch()
    assert [r.request_id for r in batch.replies] == ids  # request order
    assert batch.values() == singles


def test_batch_isolates_per_element_failures(served):
    _, door, space, vid = served
    good = _queries(space, vid, 2, seed=5)
    bad = Request(venue="f" * 64, kind="distance")  # unknown venue
    with FrontDoorClient(door.address) as client:
        values = client.call_batch([good[0], bad, good[1]])
    assert not isinstance(values[0], Exception)
    assert not isinstance(values[2], Exception)
    assert isinstance(values[1], Exception)  # the bad slot, alone, failed


def test_batch_preserves_update_then_query_ordering(served):
    """An insert followed by a kNN at the same point, in one batch:
    the query must see the object the update just inserted."""
    _, door, space, vid = served
    point = random_point(space, random.Random(23))
    with FrontDoorClient(door.address) as client:
        insert = Request(venue=vid, kind="update",
                         op=UpdateOp(kind="insert", location=point,
                                     label="probe", category="probe"))
        query = Request(venue=vid, kind="knn", source=point, k=1)
        new_id, neighbors = client.call_batch([insert, query])
        assert neighbors[0].object_id == new_id
        assert neighbors[0].distance == 0.0
        client.call(Request(venue=vid, kind="update",
                            op=UpdateOp(kind="delete", object_id=new_id)))


def test_local_kinds_answered_by_the_front_door(served):
    _, door, space, vid = served
    with FrontDoorClient(door.address) as client:
        listing = client.call(Request(venue="", kind="venues"))
        assert listing["venues"] == [{"id": vid, "name": space.name}]
        assert client.call(Request(venue="", kind="ping")) == {"ok": True}
        stats = client.call(Request(venue="", kind="stats"))
        assert stats["venues"] == 1 and stats["shards"] == 2
        metrics = client.call(Request(venue="", kind="metrics"))
        names = {c["name"] for c in metrics["counters"].values()}
        assert "frontdoor_frames_total" in names
        hists = {h["name"] for h in metrics["histograms"].values()}
        assert "frontdoor_request_seconds" in hists


def test_concurrent_clients_all_get_their_own_answers(served):
    cluster, door, space, vid = served
    requests = _queries(space, vid, 6, seed=29)
    expected = [result_to_doc(cluster.submit(r).result(timeout=30.0))
                for r in requests]
    failures: list = []

    def worker(batched: bool) -> None:
        try:
            with FrontDoorClient(door.address) as client:
                for _ in range(3):
                    if batched:
                        got = [result_to_doc(v)
                               for v in client.call_batch(requests)]
                    else:
                        got = [result_to_doc(client.call(r))
                               for r in requests]
                    if got != expected:
                        failures.append((batched, got))
        except Exception as exc:  # noqa: BLE001 - collected for the assert
            failures.append((batched, exc))

    threads = [threading.Thread(target=worker, args=(i % 2 == 0,))
               for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60.0)
    assert not failures


# ----------------------------------------------------------------------
# Hostile clients: typed errors or a closed connection, never a wedge
# ----------------------------------------------------------------------
def test_malformed_request_with_salvageable_id_gets_typed_error(served):
    _, door, space, vid = served
    sock = _raw_connection(door)
    try:
        send_doc(sock, {"id": 41, "kind": "distance"})  # no venue field
        reply = recv_doc(sock)
        assert reply["id"] == 41 and reply["error"] == "ProtocolError"
        # the connection survived: a well-formed request still answers
        send_doc(sock, request_to_doc(Request(venue="", kind="ping"), 42))
        assert recv_doc(sock)["id"] == 42
    finally:
        sock.close()
    assert _server_still_serves(door, vid)


def test_unsalvageable_document_closes_the_connection(served):
    _, door, space, vid = served
    sock = _raw_connection(door)
    try:
        send_doc(sock, {"kind": "distance"})  # no id to reply under
        assert recv_doc(sock) is None  # server closed cleanly
    finally:
        sock.close()
    assert _server_still_serves(door, vid)


def test_damaged_batch_envelope_closes_the_connection(served):
    _, door, space, vid = served
    for envelope in ({"batch": []}, {"batch": 42}):
        sock = _raw_connection(door)
        try:
            send_doc(sock, envelope)
            assert recv_doc(sock) is None
        finally:
            sock.close()
    assert _server_still_serves(door, vid)


def test_truncated_frame_closes_the_connection(served):
    _, door, space, vid = served
    frame = encode_frame(request_to_doc(Request(venue="", kind="ping"), 1))
    sock = _raw_connection(door)
    try:
        sock.sendall(frame[: len(frame) - 3])
        sock.shutdown(socket.SHUT_WR)  # EOF mid-frame
        assert recv_doc(sock) is None
    finally:
        sock.close()
    assert _server_still_serves(door, vid)


def test_oversized_declared_length_closes_the_connection(served):
    _, door, space, vid = served
    sock = _raw_connection(door)
    try:
        sock.sendall((2**31).to_bytes(4, "big"))
        assert recv_doc(sock) is None
    finally:
        sock.close()
    assert _server_still_serves(door, vid)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(garbage=st.binary(min_size=1, max_size=128))
def test_fuzz_arbitrary_bytes_never_wedge_the_server(served, garbage):
    """Arbitrary bytes — mangled prefixes, spliced junk, half-frames:
    the server replies or closes, and keeps serving fresh clients."""
    _, door, space, vid = served
    sock = _raw_connection(door)
    try:
        sock.sendall(garbage)
        sock.shutdown(socket.SHUT_WR)
        # read whatever comes back until EOF/damage; must terminate
        for _ in range(64):
            try:
                if recv_doc(sock) is None:
                    break
            except ProtocolError:
                break
        else:
            raise AssertionError("reply stream did not resolve")
    finally:
        sock.close()
    assert _server_still_serves(door, vid)


def test_mid_frame_disconnect_after_valid_traffic(served):
    """A client that worked, then died mid-frame: no leak, no wedge."""
    _, door, space, vid = served
    sock = _raw_connection(door)
    try:
        send_doc(sock, request_to_doc(Request(venue="", kind="ping"), 7))
        assert recv_doc(sock)["id"] == 7
        sock.sendall(b"\x00\x00\x10\x00partial")  # promises 4096 bytes
    finally:
        sock.close()  # …and vanishes
    assert _server_still_serves(door, vid)


# ----------------------------------------------------------------------
# Admission control over the wire
# ----------------------------------------------------------------------
def test_shed_requests_get_typed_overload_with_retry_hint(tmp_path):
    space = build_mall("tiny", name="shed-mall")
    objects = random_objects(space, 8, seed=3)
    admission = AdmissionController(rate=0.001, burst=2.0)
    with ClusterFrontend(tmp_path / "cat", shards=1,
                         admission=admission) as cluster:
        vid = cluster.add_venue(space, objects=objects)
        with AsyncFrontDoor(cluster) as door:
            requests = _queries(space, vid, 4, seed=7)
            with FrontDoorClient(door.address) as client:
                # burst of 2: two answered, then typed sheds
                client.call(requests[0])
                client.call(requests[1])
                with pytest.raises(OverloadedError) as caught:
                    client.call(requests[2])
                assert caught.value.retry_after == pytest.approx(
                    1000.0, rel=0.1)  # 1 token / 0.001 per s

                # batch: shed slots isolated, control kinds unaffected
                values = client.call_batch(requests)
                assert all(isinstance(v, OverloadedError) for v in values)
                assert client.call(Request(venue="", kind="ping")) == {
                    "ok": True}

                # rejections visible in the merged metrics
                metrics = client.call(Request(venue="", kind="metrics"))
                rejected = [
                    c for c in metrics["counters"].values()
                    if c["name"] == "admission_rejected_total"
                ]
                assert rejected and rejected[0]["labels"]["venue"] == vid[:12]
                assert sum(c["value"] for c in rejected) >= 5
            assert cluster.stats().rejected >= 5


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
def test_front_door_lifecycle(tmp_path):
    space = build_mall("tiny", name="life-mall")
    with ClusterFrontend(tmp_path / "cat", shards=1) as cluster:
        cluster.add_venue(space)
        door = AsyncFrontDoor(cluster)
        door.start()
        with pytest.raises(Exception, match="already started"):
            door.start()
        address = door.address
        door.stop()
        door.stop()  # idempotent
        with pytest.raises(OSError):
            socket.create_connection(address, timeout=2.0)


def test_bind_failure_surfaces_at_start(tmp_path):
    space = build_mall("tiny", name="bind-mall")
    with ClusterFrontend(tmp_path / "cat", shards=1) as cluster:
        cluster.add_venue(space)
        with AsyncFrontDoor(cluster) as door:
            clash = AsyncFrontDoor(cluster, port=door.address[1])
            with pytest.raises(OSError):
                clash.start()


def test_submit_workers_must_be_positive(tmp_path):
    space = build_mall("tiny", name="w-mall")
    with ClusterFrontend(tmp_path / "cat", shards=1) as cluster:
        cluster.add_venue(space)
        with pytest.raises(Exception, match="submit_workers"):
            AsyncFrontDoor(cluster, submit_workers=0)
