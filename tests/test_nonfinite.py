"""Non-finite floats: canonical JSON refuses raw ``inf``/``nan`` tokens;
packed fields carry them bit-exactly through every protocol round-trip.

JSON has no ``Infinity``/``NaN`` tokens, so a raw non-finite float in a
canonical document would break strict parsers and the determinism claim.
The rule enforced here: non-finite values travel only inside *packed*
fields (:mod:`repro.model.packing`), which round-trip every IEEE-754
double bit-exactly — and the serving protocol packs every float it
carries, so infinite distances (unreachable pairs) serve fine.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.core.results import Neighbor, PathResult
from repro.exceptions import ProtocolError
from repro.model.io_json import canonical_dumps
from repro.model.packing import pack_f64, unpack_f64
from repro.serving.protocol import (
    decode_frame,
    encode_frame,
    result_from_doc,
    result_to_doc,
)

INF = float("inf")
NAN = float("nan")
NON_FINITE = [INF, -INF, NAN]


def same_float(a: float, b: float) -> bool:
    return math.isnan(a) and math.isnan(b) or a == b


# ----------------------------------------------------------------------
# Canonical JSON: raw non-finite floats are refused
# ----------------------------------------------------------------------
class TestCanonicalRejection:
    @pytest.mark.parametrize("value", NON_FINITE)
    def test_raw_non_finite_rejected(self, value):
        with pytest.raises(ValueError):
            canonical_dumps({"distance": value})

    @pytest.mark.parametrize("value", NON_FINITE)
    def test_nested_non_finite_rejected(self, value):
        with pytest.raises(ValueError):
            canonical_dumps({"rows": [[0.0, value]]})

    def test_finite_still_canonical(self):
        assert canonical_dumps({"b": 1.5, "a": 2}) == '{"a":2,"b":1.5}'

    @pytest.mark.parametrize("value", NON_FINITE)
    def test_packed_non_finite_accepted(self, value):
        doc = {"distance": pack_f64([value])}
        decoded = json.loads(canonical_dumps(doc))
        assert same_float(unpack_f64(decoded["distance"])[0], value)

    def test_loads_still_accepts_legacy_infinity_tokens(self):
        # Documents written before the guard existed stay readable.
        assert json.loads('{"d": Infinity}')["d"] == INF


# ----------------------------------------------------------------------
# Wire frames: raw non-finite -> ProtocolError; packed -> round-trips
# ----------------------------------------------------------------------
class TestFrames:
    @pytest.mark.parametrize("value", NON_FINITE)
    def test_encode_frame_refuses_raw_non_finite(self, value):
        with pytest.raises(ProtocolError, match="not canonical-JSON encodable"):
            encode_frame({"id": 1, "radius": value})

    @pytest.mark.parametrize("value", NON_FINITE)
    def test_encode_frame_carries_packed_non_finite(self, value):
        frame = encode_frame({"id": 1, "v": pack_f64([value])})
        doc = decode_frame(frame[4:])
        assert same_float(unpack_f64(doc["v"])[0], value)


# ----------------------------------------------------------------------
# Result documents: inf/nan in every packed field
# ----------------------------------------------------------------------
class TestResultRoundTrips:
    @pytest.mark.parametrize("value", NON_FINITE)
    def test_float_result(self, value):
        doc = result_to_doc(value)
        encode_frame(doc)  # canonical-encodable as a frame
        assert same_float(result_from_doc(doc), value)

    @pytest.mark.parametrize("value", NON_FINITE)
    def test_path_result_distance(self, value):
        path = PathResult(distance=value, doors=[3, 1, 4])
        doc = result_to_doc(path)
        encode_frame(doc)
        back = result_from_doc(doc)
        assert same_float(back.distance, value)
        assert back.doors == path.doors

    @pytest.mark.parametrize("value", NON_FINITE)
    def test_neighbor_distances(self, value):
        neighbors = [
            Neighbor(object_id=7, distance=1.25),
            Neighbor(object_id=2, distance=value),
        ]
        doc = result_to_doc(neighbors)
        encode_frame(doc)
        back = result_from_doc(doc)
        assert [n.object_id for n in back] == [7, 2]
        assert same_float(back[1].distance, value)
        assert back[0].distance == 1.25
