"""Public API surface: imports resolve, exceptions nest, version set."""

import pytest

import repro
from repro import (
    ConstructionError,
    DisconnectedVenueError,
    QueryError,
    ReproError,
    VenueError,
)


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version():
    assert repro.__version__.count(".") == 2


def test_exception_hierarchy():
    assert issubclass(VenueError, ReproError)
    assert issubclass(DisconnectedVenueError, VenueError)
    assert issubclass(QueryError, ReproError)
    assert issubclass(ConstructionError, ReproError)


def test_subpackages_importable():
    import repro.baselines
    import repro.bench
    import repro.core
    import repro.datasets
    import repro.graph
    import repro.model

    for mod in (repro.baselines, repro.bench, repro.core, repro.datasets,
                repro.graph, repro.model):
        for name in mod.__all__:
            assert hasattr(mod, name), (mod.__name__, name)


def test_quickstart_docstring_example():
    """The README/docstring snippet actually works."""
    from repro import IndoorPoint, IndoorSpaceBuilder, VIPTree

    b = IndoorSpaceBuilder(name="tiny")
    hall = b.add_hallway(floor=0)
    office = b.add_room(floor=0)
    d0 = b.add_exterior_door(hall, x=0, y=0)
    b.add_door(hall, office, x=5, y=0)
    space = b.build()
    tree = VIPTree.build(space)
    dist = tree.shortest_distance(IndoorPoint(office, 6.0, 1.0), d0)
    assert dist == pytest.approx(1.0 + 5.0 + 1.0, abs=1.0)
