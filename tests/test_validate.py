"""The verify_tree audit: passes on good trees, catches corruption."""

import pytest

from repro import IPTree, VIPTree
from repro.core.validate import verify_tree


class TestCleanTrees:
    def test_iptree_passes(self, fig1_iptree):
        report = verify_tree(fig1_iptree)
        assert report.ok, report.errors
        assert report.checks_run > 0

    def test_viptree_passes(self, tower_viptree):
        report = verify_tree(tower_viptree)
        assert report.ok, report.errors

    @pytest.mark.parametrize("name", ["mall", "office", "campus"])
    def test_generator_venues_pass(self, name, all_fixture_spaces):
        tree = VIPTree.build(all_fixture_spaces[name])
        report = verify_tree(tree)
        assert report.ok, report.errors

    def test_ablation_tree_passes(self, tower_space):
        tree = IPTree.build(tower_space, use_superior_doors=False)
        report = verify_tree(tree)
        assert report.ok, report.errors


class TestCorruptionDetected:
    def _fresh(self, space):
        return VIPTree.build(space)

    def test_detects_bad_matrix_entry(self, tower_space):
        tree = self._fresh(tower_space)
        node = next(n for n in tree.nodes if n.is_leaf and n.access_doors)
        row = node.table.row_doors[0]
        col = node.table.col_doors[-1]
        if row == col:
            row = node.table.row_doors[1]
        node.table.set_entry(row, col, 12345.0)
        report = verify_tree(tree, matrix_samples=len(node.table.row_doors))
        assert not report.ok

    def test_detects_broken_parent_pointer(self, tower_space):
        tree = self._fresh(tower_space)
        child = tree.nodes[tree.root_id].children[0]
        tree.nodes[child].parent = child  # corrupt
        report = verify_tree(tree)
        assert not report.ok

    def test_detects_missing_access_door(self, tower_space):
        tree = self._fresh(tower_space)
        node = next(n for n in tree.nodes if n.is_leaf and n.access_doors)
        node.access_doors = node.access_doors[:-1]
        report = verify_tree(tree)
        assert not report.ok

    def test_detects_vip_distance_corruption(self, tower_space):
        tree = self._fresh(tower_space)
        door = next(d for d in range(tree.space.num_doors) if tree.vip_store[d])
        target = next(iter(tree.vip_store[door]))
        dist, via = tree.vip_store[door][target]
        tree.vip_store[door][target] = (dist + 99.0, via)
        report = verify_tree(tree, matrix_samples=tree.space.num_doors)
        assert not report.ok

    def test_detects_empty_superior_doors(self, tower_space):
        tree = self._fresh(tower_space)
        tree.superior_doors[0] = []
        report = verify_tree(tree)
        assert not report.ok


class TestAblationFlag:
    def test_answers_identical(self, tower_space, tower_oracle):
        from repro.testing import sample_points

        full = IPTree.build(tower_space, use_superior_doors=True)
        ablated = IPTree.build(tower_space, use_superior_doors=False)
        pts = sample_points(tower_space, 10, seed=91)
        for s, t in zip(pts[:5], pts[5:]):
            expected = tower_oracle.shortest_distance(s, t)
            assert full.shortest_distance(s, t) == pytest.approx(expected, abs=1e-9)
            assert ablated.shortest_distance(s, t) == pytest.approx(expected, abs=1e-9)

    def test_ablated_considers_more_entry_doors(self, tower_space):
        ablated = IPTree.build(tower_space, use_superior_doors=False)
        full = IPTree.build(tower_space, use_superior_doors=True)
        total_full = sum(len(s) for s in full.superior_doors)
        total_ablated = sum(len(s) for s in ablated.superior_doors)
        assert total_ablated > total_full

    def test_vip_supports_ablation(self, tower_space, tower_oracle):
        from repro.testing import sample_points

        vip = VIPTree.build(tower_space, use_superior_doors=False)
        pts = sample_points(tower_space, 6, seed=92)
        for s, t in zip(pts[:3], pts[3:]):
            assert vip.shortest_distance(s, t) == pytest.approx(
                tower_oracle.shortest_distance(s, t), abs=1e-9
            )
