"""Failure injection: every index fails loudly (not wrongly) on bad
inputs — disconnected venues, malformed endpoints, foreign objects."""

import pytest

from repro import (
    DisconnectedVenueError,
    IndoorPoint,
    IndoorSpaceBuilder,
    IPTree,
    QueryError,
    VIPTree,
)
from repro.baselines import DistanceMatrix, DistAware, GTree, Road
from repro.model.d2d import build_d2d_graph


@pytest.fixture()
def disconnected_space():
    b = IndoorSpaceBuilder(name="islands")
    a1 = b.add_room(floor=0)
    a2 = b.add_room(floor=0)
    b.add_door(a1, a2, x=0, y=0)
    c1 = b.add_room(floor=0)
    c2 = b.add_room(floor=0)
    b.add_door(c1, c2, x=50, y=50)
    return b.build()


class TestDisconnectedVenues:
    def test_iptree_refuses(self, disconnected_space):
        with pytest.raises(DisconnectedVenueError):
            IPTree.build(disconnected_space)

    def test_viptree_refuses(self, disconnected_space):
        with pytest.raises(DisconnectedVenueError):
            VIPTree.build(disconnected_space)

    @pytest.mark.parametrize("index_cls", [DistanceMatrix, DistAware, GTree, Road])
    def test_baselines_refuse(self, disconnected_space, index_cls):
        with pytest.raises(DisconnectedVenueError):
            index_cls(disconnected_space)

    def test_explicit_opt_out(self, disconnected_space):
        graph = build_d2d_graph(disconnected_space, require_connected=False)
        assert not graph.is_connected()


class TestEndpointValidation:
    @pytest.fixture(scope="class")
    def indexes(self, fig1_space, fig1_iptree):
        return [
            fig1_iptree,
            DistanceMatrix(fig1_space, fig1_iptree.d2d),
            DistAware(fig1_space, fig1_iptree.d2d),
            GTree(fig1_space, fig1_iptree.d2d),
            Road(fig1_space, fig1_iptree.d2d),
        ]

    def test_unknown_partition_rejected_everywhere(self, indexes):
        bad = IndoorPoint(77_777, 0.0, 0.0)
        for index in indexes:
            with pytest.raises(QueryError):
                index.shortest_distance(bad, 0)

    def test_unknown_door_rejected_everywhere(self, indexes):
        for index in indexes:
            with pytest.raises(QueryError):
                index.shortest_distance(0, -5)
            with pytest.raises(QueryError):
                index.shortest_distance(0, 10**6)

    def test_wrong_type_rejected_everywhere(self, indexes):
        for index in indexes:
            with pytest.raises(QueryError):
                index.shortest_distance((1, 2.0), 0)


class TestSingleLeafVenues:
    """Degenerate trees (root == leaf) still answer every query."""

    @pytest.fixture(scope="class")
    def tiny(self):
        b = IndoorSpaceBuilder(name="one-room-flat")
        a = b.add_room(floor=0)
        c = b.add_room(floor=0)
        b.add_door(a, c, x=2.0, y=0.0)
        b.add_exterior_door(a, x=0.0, y=0.0)
        return b.build()

    def test_tree_collapses_to_leaf_root(self, tiny):
        tree = VIPTree.build(tiny)
        assert tree.root.is_leaf

    def test_distance_and_path(self, tiny):
        tree = VIPTree.build(tiny)
        s = IndoorPoint(0, 0.0, 1.0)
        t = IndoorPoint(1, 3.0, 1.0)
        d = tree.shortest_distance(s, t)
        res = tree.shortest_path(s, t)
        assert res.distance == pytest.approx(d)
        assert res.doors  # must pass the connecting door

    def test_knn_on_single_leaf(self, tiny):
        from repro import ObjectIndex, make_object_set

        tree = VIPTree.build(tiny)
        objs = make_object_set(tiny, [IndoorPoint(1, 3.0, 0.0)])
        oi = ObjectIndex(tree, objs)
        res = tree.knn(oi, IndoorPoint(0, 0.0, 0.0), 1)
        assert len(res) == 1


class TestZeroWeightConnectors:
    """Lifts with zero travel weight (paper §2: 'set to zero for a
    lift/escalator if the distance corresponds to the walking
    distance')."""

    @pytest.fixture(scope="class")
    def lift_space(self):
        b = IndoorSpaceBuilder(name="free-lift")
        halls = [b.add_hallway(floor=f) for f in range(2)]
        rooms = []
        for f, hall in enumerate(halls):
            for i in range(5):
                r = b.add_room(floor=f)
                b.add_door(hall, r, x=2.0 + i * 3, y=1.0, floor=f)
                rooms.append(r)
        b.add_exterior_door(halls[0], x=0, y=0, floor=0)
        b.add_staircase(halls[0], halls[1], x=16.0, y=0.0, floor_lower=0, floor_upper=1)
        b.add_lift(halls, x=8.0, y=0.0, floors=[0.0, 1.0], travel_weight=0.0)
        space = b.build()
        space.fixture_rooms = [rooms]
        return space

    def test_distance_with_free_lift(self, lift_space):
        from repro.baselines import DijkstraOracle

        tree = VIPTree.build(lift_space)
        oracle = DijkstraOracle(lift_space, tree.d2d)
        s = IndoorPoint(lift_space.fixture_rooms[0][0], 2.0, 2.0)
        t = IndoorPoint(lift_space.fixture_rooms[0][-1], 14.0, 2.0)
        assert tree.shortest_distance(s, t) == pytest.approx(
            oracle.shortest_distance(s, t), abs=1e-9
        )

    def test_path_with_free_lift(self, lift_space):
        from repro.core.query_path import path_length

        tree = VIPTree.build(lift_space)
        s = IndoorPoint(lift_space.fixture_rooms[0][1], 5.0, 2.0)
        t = IndoorPoint(lift_space.fixture_rooms[0][-2], 11.0, 2.0)
        res = tree.shortest_path(s, t)
        assert path_length(tree, res, s, t) == pytest.approx(res.distance, abs=1e-9)
