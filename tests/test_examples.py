"""Smoke tests: every example script runs end-to-end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    p for p in (Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.stem} produced no output"


def test_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "emergency_evacuation", "airport_navigation",
            "campus_facility_search", "live_tracking",
            "multi_venue_server", "sharded_cluster"} <= names
