"""Benchmark harness: reporting, contexts, and tiny experiment runs."""

import pytest

from repro.bench import Table, VenueContext, time_queries
from repro.bench.experiments import exp_table1, exp_table2
from repro.bench.harness import DISTMX_MAX_DOORS


class TestTable:
    def test_render_aligns(self):
        t = Table("Demo", ["a", "bb"], notes="n")
        t.add_row(1, 2.5)
        t.add_row(100, "x")
        text = t.render()
        assert "Demo" in text
        assert "note: n" in text
        assert "100" in text

    def test_markdown(self):
        t = Table("Demo", ["a"])
        t.add_row(3.14159)
        md = t.to_markdown()
        assert md.startswith("### Demo")
        assert "| 3.142 |" in md

    def test_large_numbers_group(self):
        t = Table("x", ["n"])
        t.add_row(1_234_567)
        assert "1,234,567" in t.render()


class TestVenueContext:
    @pytest.fixture(scope="class")
    def ctx(self):
        return VenueContext("MC", "tiny")

    def test_indexes_cached(self, ctx):
        assert ctx.viptree is ctx.viptree
        assert ctx.iptree is ctx.iptree
        assert ctx.gtree is ctx.gtree

    def test_distmx_respects_cap(self, ctx):
        assert ctx.space.num_doors < DISTMX_MAX_DOORS
        assert ctx.distmx is not None

    def test_workloads_cached(self, ctx):
        assert ctx.pairs(5) is ctx.pairs(5)
        assert ctx.objects(4) is ctx.objects(4)

    def test_queries_are_sources(self, ctx):
        qs = ctx.queries(5)
        assert len(qs) == 5

    def test_object_index_matches_tree(self, ctx):
        oi = ctx.object_index("vip", 4)
        assert oi.tree is ctx.viptree


class TestTiming:
    def test_time_queries_counts(self):
        calls = []
        res = time_queries(lambda a: calls.append(a), [(1,), (2,)], repeat=3)
        assert res.queries == 6
        assert len(calls) == 6
        assert res.mean_us >= 0


class TestExperiments:
    def test_table1_runs(self):
        tables = exp_table1(profile="tiny", venues=("MC",))
        assert len(tables) == 1
        assert len(tables[0].rows) == 1
        assert tables[0].rows[0][0] == "MC"

    def test_table2_runs(self):
        tables = exp_table2(profile="tiny", venues=("MC", "Men"))
        assert len(tables[0].rows) == 2
        # measured columns are positive
        for row in tables[0].rows:
            assert row[1] > 0 and row[3] > 0

    def test_cli_main(self, capsys, tmp_path):
        from repro.bench.__main__ import main

        md = tmp_path / "out.md"
        rc = main(["table2", "--profile", "tiny", "--markdown", str(md)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert md.read_text().startswith("### Table 2")
