"""Hypothesis strategies generating random (but always valid) venues.

Venues are built through the public builder so every generated space is
structurally valid and connected; shapes cover 1-3 floors, 1-3 hallways
per floor, rooms with one or two doors, staircases and optional lifts —
the full vocabulary the indexes must handle.
"""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro import IndoorSpaceBuilder


def build_random_venue(
    seed: int,
    floors: int,
    halls_per_floor: int,
    rooms_per_hall: int,
    extra_door_rate: float,
    with_lift: bool,
):
    rng = random.Random(seed)
    b = IndoorSpaceBuilder(name=f"hyp-{seed}")
    floor_halls: list[list[int]] = []
    all_rooms: list[int] = []
    for f in range(floors):
        halls = []
        for h in range(halls_per_floor):
            x0 = h * (rooms_per_hall * 2.0 + 6.0)
            hall = b.add_hallway(floor=f, label=f"F{f}H{h}")
            halls.append(hall)
            prev = None
            for i in range(rooms_per_hall):
                room = b.add_room(floor=f, label=f"F{f}H{h}R{i}")
                all_rooms.append(room)
                b.add_door(
                    hall,
                    room,
                    x=x0 + 1.0 + i * 2.0 + rng.uniform(-0.4, 0.4),
                    y=1.0,
                    floor=f,
                )
                if rng.random() < extra_door_rate:
                    # second door: either back to the hallway or into the
                    # previous room
                    if prev is not None and rng.random() < 0.5:
                        b.add_door(prev, room, x=x0 + i * 2.0, y=2.0, floor=f)
                    else:
                        b.add_door(
                            hall, room, x=x0 + 1.3 + i * 2.0, y=1.0, floor=f
                        )
                prev = room
        for h in range(len(halls) - 1):
            b.add_door(
                halls[h],
                halls[h + 1],
                x=(h + 1) * (rooms_per_hall * 2.0 + 6.0) - 2.0,
                y=0.5,
                floor=f,
            )
        floor_halls.append(halls)
    for f in range(floors - 1):
        b.add_staircase(
            floor_halls[f][0],
            floor_halls[f + 1][0],
            x=0.2,
            y=0.2,
            floor_lower=f,
            floor_upper=f + 1,
        )
        if rng.random() < 0.5 and halls_per_floor > 1:
            b.add_staircase(
                floor_halls[f][-1],
                floor_halls[f + 1][-1],
                x=halls_per_floor * (rooms_per_hall * 2.0 + 6.0) - 1.0,
                y=0.2,
                floor_lower=f,
                floor_upper=f + 1,
            )
    if with_lift and floors > 1:
        b.add_lift(
            [halls[0] for halls in floor_halls],
            x=2.5,
            y=0.1,
            floors=[float(f) for f in range(floors)],
        )
    for e in range(rng.randint(1, 2)):
        b.add_exterior_door(floor_halls[0][0], x=-1.0 - e, y=0.0, floor=0)
    space = b.build()
    space.fixture_rooms = [all_rooms]
    return space


@st.composite
def venues(draw):
    """A random connected venue plus its generation parameters."""
    return build_random_venue(
        seed=draw(st.integers(0, 2**16)),
        floors=draw(st.integers(1, 3)),
        halls_per_floor=draw(st.integers(1, 3)),
        rooms_per_hall=draw(st.integers(2, 7)),
        extra_door_rate=draw(st.sampled_from([0.0, 0.2, 0.5])),
        with_lift=draw(st.booleans()),
    )
