"""``tools/bench_trend.py`` merges BENCH_*.json artifacts faithfully.

The trend tool is what CI (and humans pulling artifacts) rely on to
fold per-job benchmark documents into one ``BENCH_summary.json`` —
these tests pin the merge semantics: recursive discovery, whole-doc
retention, headline extraction, and graceful handling of junk inputs.
"""

import json
import sys
from pathlib import Path

ROOT = Path(__file__).parent.parent
sys.path.insert(0, str(ROOT / "tools"))

from bench_trend import SUMMARY_NAME, collect, headline, main, merge  # noqa: E402


def _write(path: Path, doc) -> Path:
    path.write_text(json.dumps(doc))
    return path


def test_collect_is_recursive_and_skips_summary(tmp_path):
    a = _write(tmp_path / "BENCH_kernels.json", {"bench": "kernels", "rows": []})
    sub = tmp_path / "artifact-dir"
    sub.mkdir()
    b = _write(sub / "BENCH_invalidation.json",
               {"bench": "invalidation", "rows": []})
    _write(tmp_path / SUMMARY_NAME, {"summary": "bench-trend"})
    _write(tmp_path / "notes.json", {"bench": "ignored-wrong-name"})
    assert collect(tmp_path) == sorted([a, b])


def test_headline_lifts_factor_fields():
    doc = {"bench": "invalidation", "rows": [
        {"mode": "full", "hits": 0},
        {"mode": "scoped", "hits": 176, "hit_factor_vs_full": 177.0,
         "throughput_factor_vs_full": 1.2},
    ]}
    h = headline(doc)
    assert h == {"rows": 2, "hit_factor_vs_full": 177.0,
                 "throughput_factor_vs_full": 1.2}


def test_merge_keeps_whole_docs_and_reports_junk(tmp_path):
    kern = {"bench": "kernels", "schema": 1,
            "rows": [{"kernel": "numpy", "speedup": 4.5}]}
    _write(tmp_path / "BENCH_kernels.json", kern)
    (tmp_path / "BENCH_broken.json").write_text("{not json")
    _write(tmp_path / "BENCH_nameless.json", {"rows": []})

    summary = merge(collect(tmp_path))
    assert summary["schema"] == 1
    assert summary["benches"]["kernels"]["doc"] == kern
    assert summary["benches"]["kernels"]["headline"]["speedup"] == 4.5
    reasons = {Path(s["file"]).name: s["reason"] for s in summary["skipped"]}
    assert set(reasons) == {"BENCH_broken.json", "BENCH_nameless.json"}


def test_duplicate_bench_names_keep_last(tmp_path):
    _write(tmp_path / "BENCH_a.json", {"bench": "same", "rows": [], "v": 1})
    _write(tmp_path / "BENCH_b.json", {"bench": "same", "rows": [], "v": 2})
    summary = merge(collect(tmp_path))
    assert summary["benches"]["same"]["doc"]["v"] == 2
    assert len(summary["skipped"]) == 1


def test_cli_writes_summary(tmp_path, capsys):
    _write(tmp_path / "BENCH_invalidation.json",
           {"bench": "invalidation", "schema": 1,
            "rows": [{"mode": "scoped", "hit_factor_vs_full": 12.0}]})
    out = tmp_path / SUMMARY_NAME
    assert main(["--dir", str(tmp_path), "--out", str(out)]) == 0
    summary = json.loads(out.read_text())
    assert list(summary["benches"]) == ["invalidation"]
    assert "invalidation" in capsys.readouterr().out


def test_cli_on_empty_directory_still_writes(tmp_path):
    out = tmp_path / SUMMARY_NAME
    assert main(["--dir", str(tmp_path), "--out", str(out)]) == 0
    summary = json.loads(out.read_text())
    assert summary["benches"] == {} and summary["skipped"] == []
