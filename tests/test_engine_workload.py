"""Mixed-workload generation and the engine replay driver."""

import pytest

from repro import VIPTree, make_object_set
from repro.datasets import DEFAULT_MIX, MixedQuery, mixed_queries
from repro.engine import QueryEngine, replay
from repro.testing import sample_points


@pytest.fixture(scope="module")
def engine_setting(fig1_space):
    vip = VIPTree.build(fig1_space)
    objects = make_object_set(fig1_space, sample_points(fig1_space, 8, seed=61), category="poi")
    queries = mixed_queries(fig1_space, 120, seed=62, pool=16, k=3, d2d=vip.d2d)
    return fig1_space, vip, objects, queries


class TestMixedQueries:
    def test_deterministic(self, fig1_space):
        a = mixed_queries(fig1_space, 50, seed=7, pool=8, radius=20.0)
        b = mixed_queries(fig1_space, 50, seed=7, pool=8, radius=20.0)
        assert a == b
        c = mixed_queries(fig1_space, 50, seed=8, pool=8, radius=20.0)
        assert a != c

    def test_mix_shape(self, fig1_space):
        items = mixed_queries(fig1_space, 400, DEFAULT_MIX, seed=9, pool=10, radius=15.0)
        counts = {}
        for q in items:
            counts[q.kind] = counts.get(q.kind, 0) + 1
        assert set(counts) <= set(DEFAULT_MIX)
        # 70/20/10 within generous sampling tolerance
        assert counts["knn"] > counts["distance"] > counts["range"]
        assert len(items) == 400

    def test_kinds_carry_their_parameters(self, fig1_space):
        items = mixed_queries(
            fig1_space, 80,
            {"knn": 0.4, "distance": 0.2, "range": 0.2, "path": 0.2},
            seed=10, pool=6, k=4, radius=17.5,
        )
        for q in items:
            assert isinstance(q, MixedQuery)
            if q.kind == "knn":
                assert q.k == 4 and q.target is None
            elif q.kind == "range":
                assert q.radius == 17.5
            else:
                assert q.target is not None

    def test_pool_bounds_distinct_endpoints(self, fig1_space):
        items = mixed_queries(fig1_space, 200, seed=11, pool=5, radius=10.0)
        sources = {(q.source.partition_id, q.source.x, q.source.y) for q in items}
        assert len(sources) <= 5

    def test_unknown_kind_rejected(self, fig1_space):
        with pytest.raises(ValueError):
            mixed_queries(fig1_space, 10, {"teleport": 1.0})

    def test_zero_weights_rejected(self, fig1_space):
        with pytest.raises(ValueError):
            mixed_queries(fig1_space, 10, {"knn": 0.0})


class TestReplay:
    def test_batched_equals_sequential(self, engine_setting):
        space, vip, objects, queries = engine_setting
        seq_results, seq_report = replay(
            QueryEngine(vip, objects, cache=False), queries, batched=False
        )
        bat_results, bat_report = replay(
            QueryEngine(vip, objects, cache=True), queries, batched=True
        )
        assert len(seq_results) == len(bat_results) == len(queries)
        for a, b in zip(seq_results, bat_results):
            if isinstance(a, float):
                assert a == b
            elif hasattr(a, "doors"):
                assert a.distance == b.distance and a.doors == b.doors
            else:
                assert a == b
        assert seq_report.by_kind == bat_report.by_kind
        assert not seq_report.batched and bat_report.batched

    def test_report_fields(self, engine_setting):
        space, vip, objects, queries = engine_setting
        engine = QueryEngine(vip, objects, cache=True)
        _, report = replay(engine, queries)
        assert report.queries == len(queries)
        assert sum(report.by_kind.values()) == len(queries)
        assert report.seconds >= 0.0
        assert report.qps > 0
        assert report.stats is not None
        assert report.stats.queries == len(queries)
        assert "q/s" in report.summary()

    def test_replaying_twice_raises_hit_rate(self, engine_setting):
        space, vip, objects, queries = engine_setting
        engine = QueryEngine(vip, objects, cache=True)
        _, first = replay(engine, queries)
        _, second = replay(engine, queries)
        assert second.stats.hits > first.stats.hits
        assert second.stats.misses == first.stats.misses  # all repeats hit

    def test_unknown_kind_rejected_in_both_modes(self, engine_setting):
        space, vip, objects, _ = engine_setting
        bogus = [MixedQuery("teleport", sample_points(space, 1, seed=64)[0])]
        engine = QueryEngine(vip, objects)
        with pytest.raises(ValueError):
            replay(engine, bogus, batched=True)
        with pytest.raises(ValueError):
            replay(engine, bogus, batched=False)

    def test_mixed_path_queries_replay(self, engine_setting):
        space, vip, objects, _ = engine_setting
        queries = mixed_queries(
            space, 40, {"path": 0.5, "distance": 0.5}, seed=63, pool=8, radius=0.0
        )
        results, report = replay(QueryEngine(vip, objects), queries)
        for q, res in zip(queries, results):
            if q.kind == "path":
                assert hasattr(res, "doors")
            else:
                assert isinstance(res, float)
        assert report.by_kind["path"] + report.by_kind["distance"] == 40
