"""QueryEngine: batch/single identity, cache correctness, stats, LRU."""

import pytest

from repro import IPTree, QueryError, VIPTree
from repro.baselines import DijkstraOracle, DistanceMatrix, Road
from repro.core import ObjectIndex
from repro.engine import LRUCache, QueryEngine
from repro.testing import sample_points


@pytest.fixture(scope="module", params=["fig1", "tower"])
def setting(request, all_fixture_spaces):
    space = all_fixture_spaces[request.param]
    vip = VIPTree.build(space)
    oracle = DijkstraOracle(space, vip.d2d)
    objects = ObjectIndex(vip, _objects_for(space, vip))
    return space, vip, oracle, objects


def _objects_for(space, tree):
    from repro import make_object_set

    locs = sample_points(space, 10, seed=55)
    return make_object_set(space, locs, category="poi")


def _pairs(space, n, seed=13):
    pts = sample_points(space, 2 * n, seed=seed)
    return list(zip(pts[:n], pts[n:]))


# ----------------------------------------------------------------------
class TestBatchMatchesSingle:
    """Batch endpoints must be element-wise identical to single calls."""

    def test_batch_distance(self, setting):
        space, vip, _, objects = setting
        pairs = _pairs(space, 12)
        single = QueryEngine(vip, objects, cache=False)
        batch = QueryEngine(vip, objects, cache=True)
        expected = [single.distance(s, t) for s, t in pairs]
        got = batch.batch_distance(pairs)
        assert got == expected  # exact: same code path, same floats

    def test_batch_path(self, setting):
        space, vip, _, objects = setting
        pairs = _pairs(space, 10)
        single = QueryEngine(vip, objects, cache=False)
        batch = QueryEngine(vip, objects, cache=True)
        expected = [single.path(s, t) for s, t in pairs]
        got = batch.batch_path(pairs)
        for e, g in zip(expected, got):
            assert g.distance == e.distance
            assert g.doors == e.doors

    def test_batch_knn(self, setting):
        space, vip, _, objects = setting
        queries = sample_points(space, 12, seed=21)
        single = QueryEngine(vip, objects, cache=False)
        batch = QueryEngine(vip, objects, cache=True)
        expected = [single.knn(q, 3) for q in queries]
        got = batch.batch_knn(queries, 3)
        assert got == expected

    def test_batch_range(self, setting):
        space, vip, _, objects = setting
        queries = sample_points(space, 12, seed=22)
        single = QueryEngine(vip, objects, cache=False)
        batch = QueryEngine(vip, objects, cache=True)
        expected = [single.range_query(q, 30.0) for q in queries]
        got = batch.batch_range(queries, 30.0)
        assert got == expected

    def test_repeated_batches_stay_identical(self, setting):
        """Cache warm-up must not change any answer."""
        space, vip, _, objects = setting
        queries = sample_points(space, 8, seed=23)
        engine = QueryEngine(vip, objects, cache=True)
        first = engine.batch_knn(queries, 4)
        second = engine.batch_knn(queries, 4)
        assert first == second


# ----------------------------------------------------------------------
class TestCacheCorrectness:
    def test_cache_on_off_agree_with_oracle_distance(self, setting):
        space, vip, oracle, objects = setting
        pairs = _pairs(space, 10, seed=31)
        on = QueryEngine(vip, objects, cache=True)
        off = QueryEngine(vip, objects, cache=False)
        for s, t in pairs:
            expected = oracle.shortest_distance(s, t)
            assert on.distance(s, t) == pytest.approx(expected, abs=1e-9)
            assert off.distance(s, t) == pytest.approx(expected, abs=1e-9)
            # cached second read returns the same value
            assert on.distance(s, t) == on.distance(t, s)

    def test_cache_on_off_agree_with_oracle_knn(self, setting):
        space, vip, oracle, objects = setting
        on = QueryEngine(vip, objects, cache=True)
        off = QueryEngine(vip, objects, cache=False)
        for q in sample_points(space, 6, seed=33):
            exp = oracle.knn(q, objects.objects, 3)
            for eng in (on, on, off):  # on twice: cold then cached
                got = eng.knn(q, 3)
                assert [n.distance for n in got] == pytest.approx(
                    [d for d, _ in exp], abs=1e-9
                )

    def test_cache_on_off_agree_with_oracle_range(self, setting):
        space, vip, oracle, objects = setting
        on = QueryEngine(vip, objects, cache=True)
        off = QueryEngine(vip, objects, cache=False)
        for q in sample_points(space, 6, seed=34):
            exp = {(round(d, 8), i) for d, i in oracle.range_query(q, objects.objects, 25.0)}
            for eng in (on, on, off):
                got = {(round(n.distance, 8), n.object_id) for n in eng.range_query(q, 25.0)}
                assert got == exp

    def test_path_cost_matches_distance_with_cache(self, setting):
        from repro.core.query_path import path_length

        space, vip, _, objects = setting
        engine = QueryEngine(vip, objects, cache=True)
        for s, t in _pairs(space, 8, seed=35):
            res = engine.path(s, t)
            res2 = engine.path(s, t)  # cached
            assert res2.distance == res.distance and res2.doors == res.doors
            assert path_length(vip, res, s, t) == pytest.approx(res.distance, abs=1e-8)
            assert engine.distance(s, t) == pytest.approx(res.distance, abs=1e-9)

    def test_ip_tree_engine_matches_vip_engine(self, setting):
        space, vip, _, objects = setting
        ip = IPTree.build(space, d2d=vip.d2d)
        eng_ip = QueryEngine(ip, _objects_for(space, ip))
        eng_vip = QueryEngine(vip, objects)
        for s, t in _pairs(space, 6, seed=36):
            assert eng_ip.distance(s, t) == pytest.approx(eng_vip.distance(s, t), abs=1e-9)


# ----------------------------------------------------------------------
class TestStats:
    def test_hit_counters_monotone_across_batches(self, setting):
        space, vip, _, objects = setting
        engine = QueryEngine(vip, objects, cache=True)
        queries = sample_points(space, 10, seed=41)
        snapshots = [engine.stats()]
        for _ in range(3):
            engine.batch_knn(queries, 3)
            snapshots.append(engine.stats())
        for prev, cur in zip(snapshots, snapshots[1:]):
            for name, value in cur.as_dict().items():
                assert value >= getattr(prev, name), name
        # second and third identical batches are pure hits
        assert snapshots[2].knn_hits == snapshots[1].knn_hits + len(queries)
        assert snapshots[2].knn_misses == snapshots[1].knn_misses
        assert snapshots[3].knn_hits == snapshots[2].knn_hits + len(queries)

    def test_query_counts(self, setting):
        space, vip, _, objects = setting
        engine = QueryEngine(vip, objects, cache=True)
        pairs = _pairs(space, 3, seed=42)
        engine.batch_distance(pairs)
        engine.batch_path(pairs)
        engine.batch_knn([s for s, _ in pairs], 2)
        engine.batch_range([s for s, _ in pairs], 10.0)
        s = engine.stats()
        assert s.distance_queries == 3
        assert s.path_queries == 3
        assert s.knn_queries == 3
        assert s.range_queries == 3
        assert s.queries == 12

    def test_symmetric_distance_key(self, setting):
        space, vip, _, objects = setting
        engine = QueryEngine(vip, objects, cache=True)
        s, t = _pairs(space, 1, seed=43)[0]
        engine.distance(s, t)
        before = engine.stats().distance_hits
        engine.distance(t, s)  # reversed pair hits the symmetric key
        assert engine.stats().distance_hits == before + 1

    def test_search_counters_separate_from_climb(self, setting):
        """kNN/range touch the search-state layer, not the climb cache."""
        space, vip, _, objects = setting
        engine = QueryEngine(vip, objects, cache=True)
        queries = sample_points(space, 6, seed=46)
        engine.batch_knn(queries, 2)
        engine.batch_knn(queries, 3)  # same endpoints, different k
        s = engine.stats()
        assert s.search_misses == len(queries)
        assert s.search_hits >= len(queries)
        assert s.climb_hits == 0 and s.climb_misses == 0

    def test_bounded_context_caches_stay_correct(self, setting):
        """A tiny context cache forces evictions but never changes answers."""
        space, vip, _, objects = setting
        small = QueryEngine(vip, objects, cache=True, context_cache_size=2)
        plain = QueryEngine(vip, objects, cache=False)
        for s, t in _pairs(space, 8, seed=47):
            assert small.distance(s, t) == plain.distance(s, t)
        for q in sample_points(space, 8, seed=48):
            assert small.knn(q, 3) == plain.knn(q, 3)

    def test_uncached_engine_reports_zero_hits(self, setting):
        space, vip, _, objects = setting
        engine = QueryEngine(vip, objects, cache=False)
        for s, t in _pairs(space, 3, seed=44):
            engine.distance(s, t)
            engine.distance(s, t)
        s = engine.stats()
        assert s.hits == 0 and s.misses == 0
        assert s.distance_queries == 6

    def test_clear_caches_preserves_counters(self, setting):
        space, vip, _, objects = setting
        engine = QueryEngine(vip, objects, cache=True)
        queries = sample_points(space, 4, seed=45)
        engine.batch_knn(queries, 2)
        engine.batch_knn(queries, 2)
        before = engine.stats()
        assert before.knn_hits > 0
        engine.clear_caches()
        after = engine.stats()
        assert after.knn_hits == before.knn_hits
        assert after.endpoint_hits == before.endpoint_hits
        # next batch recomputes (misses grow, answers unchanged)
        again = engine.batch_knn(queries, 2)
        assert engine.stats().knn_misses > before.knn_misses
        assert again == engine.batch_knn(queries, 2)


# ----------------------------------------------------------------------
class TestBaselineEngines:
    def test_oracle_engine_uniform_api(self, setting):
        space, vip, oracle, objects = setting
        eng_o = QueryEngine(oracle, objects.objects)
        eng_v = QueryEngine(vip, objects)
        for s, t in _pairs(space, 5, seed=51):
            assert eng_o.distance(s, t) == pytest.approx(eng_v.distance(s, t), abs=1e-9)
            po, pv = eng_o.path(s, t), eng_v.path(s, t)
            assert po.distance == pytest.approx(pv.distance, abs=1e-9)
        q = sample_points(space, 1, seed=52)[0]
        ko = eng_o.knn(q, 3)
        kv = eng_v.knn(q, 3)
        assert [n.distance for n in ko] == pytest.approx(
            [n.distance for n in kv], abs=1e-9
        )

    def test_distmx_and_road_engines(self, setting):
        space, vip, _, objects = setting
        mx = DistanceMatrix(space, vip.d2d)
        road = Road(space, vip.d2d)
        eng_mx = QueryEngine(mx, objects.objects)
        eng_road = QueryEngine(road, objects.objects)
        eng_v = QueryEngine(vip, objects)
        for s, t in _pairs(space, 4, seed=53):
            ref = eng_v.distance(s, t)
            assert eng_mx.distance(s, t) == pytest.approx(ref, abs=1e-6)
            assert eng_road.distance(s, t) == pytest.approx(ref, abs=1e-6)
        q = sample_points(space, 1, seed=54)[0]
        assert [n.distance for n in eng_mx.knn(q, 3)] == pytest.approx(
            [n.distance for n in eng_v.knn(q, 3)], abs=1e-6
        )

    def test_knn_without_objects_raises(self, setting):
        space, vip, oracle, _ = setting
        q = sample_points(space, 1, seed=55)[0]
        with pytest.raises(QueryError):
            QueryEngine(vip).knn(q, 2)
        with pytest.raises(QueryError):
            QueryEngine(oracle).knn(q, 2)

    def test_bad_endpoint_type_raises_query_error(self, setting):
        """Cache keying must not precede endpoint validation."""
        space, vip, _, objects = setting
        engine = QueryEngine(vip, objects, cache=True)
        with pytest.raises(QueryError):
            engine.distance("door-1", 0)
        with pytest.raises(QueryError):
            engine.knn(None, 2)

    def test_foreign_object_index_rejected(self, setting):
        space, vip, _, objects = setting
        other = VIPTree.build(space)
        with pytest.raises(QueryError):
            QueryEngine(other, objects)


# ----------------------------------------------------------------------
class TestLRUCache:
    def test_eviction_order(self):
        c = LRUCache(maxsize=2)
        c["a"] = 1
        c["b"] = 2
        assert c.get("a") == 1  # refreshes "a"
        c["c"] = 3  # evicts "b"
        assert "b" not in c
        assert "a" in c and "c" in c
        assert c.evictions == 1

    def test_counters(self):
        c = LRUCache(maxsize=4)
        assert c.get("x") is None
        c["x"] = 7
        assert c.get("x") == 7
        assert (c.hits, c.misses) == (1, 1)
        assert c.peek("x") == 7
        assert (c.hits, c.misses) == (1, 1)  # peek does not count

    def test_unbounded(self):
        c = LRUCache(maxsize=0)
        for i in range(100):
            c[i] = i
        assert len(c) == 100 and c.evictions == 0

    def test_clear_keeps_counters(self):
        c = LRUCache(maxsize=4)
        c["x"] = 1
        c.get("x")
        c.clear()
        assert len(c) == 0 and c.hits == 1
