"""Property test: random venue → random logged update stream → crash
at a random point in the log file → recover.

For any generated venue, any random op stream appended to an
:class:`OpLog` the way a primary does (apply, then log), and any crash
point — the file cut at an *arbitrary byte offset*, optionally with
trailing garbage, i.e. not necessarily a record boundary — recovery
(initial snapshot + valid log prefix) must produce an engine whose
:class:`ObjectIndex` is structurally identical to a from-scratch build
over exactly the surviving prefix of operations, with bit-identical
distance / kNN / range answers. This is the zero-acked-loss guarantee
at its foundation: the log's valid prefix IS the acknowledged history.
"""

import random
import tempfile
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ObjectIndex, UpdateOp, VIPTree
from repro.datasets import random_objects, random_point
from repro.engine import QueryEngine
from repro.storage.oplog import OpLog, scan_oplog
from strategies import venues

COMMON = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _logged_random_ops(space, engine, log, rng, count):
    """Apply a random insert/delete/move stream the way a primary does:
    mutate the engine, then append the op at its post-apply version."""
    applied = []
    for _ in range(count):
        live = engine.objects.live_ids()
        roll = rng.random()
        if roll < 0.3 or len(live) < 2:
            op = UpdateOp("insert", location=random_point(space, rng),
                          label=f"w{len(applied)}")
        elif roll < 0.5:
            op = UpdateOp("delete", object_id=rng.choice(live))
        else:
            op = UpdateOp("move", object_id=rng.choice(live),
                          location=random_point(space, rng))
        engine.update(op)
        log.append(engine.objects.version, op)
        applied.append(op)
    return applied


@given(
    space=venues(),
    seed=st.integers(0, 2**16),
    n_ops=st.integers(4, 16),
    cut_fraction=st.floats(0.0, 1.0),
    trailing_garbage=st.booleans(),
)
@settings(**COMMON)
def test_crash_at_any_log_offset_recovers_the_acked_prefix(
        space, seed, n_ops, cut_fraction, trailing_garbage):
    rng = random.Random(seed)
    tree = VIPTree.build(space)
    primary = QueryEngine(tree, ObjectIndex(
        tree, random_objects(space, 5, seed=seed)))
    base_version = primary.objects.version

    with tempfile.TemporaryDirectory() as tmp:
        snap_path = Path(tmp) / "venue.snap"
        primary.save_snapshot(snap_path)  # the pre-stream snapshot

        log = OpLog(Path(tmp) / "venue.oplog")
        ops = _logged_random_ops(space, primary, log, rng, n_ops)
        log.close()

        # crash: the file survives only up to an arbitrary byte offset,
        # possibly followed by garbage from a torn final write
        blob = log.path.read_bytes()
        cut = int(cut_fraction * len(blob))
        damaged = blob[:cut]
        if trailing_garbage:
            damaged += bytes(rng.randrange(256) for _ in range(7))
        log.path.write_bytes(damaged)

        survived = scan_oplog(log.path).records

        recovered = QueryEngine.from_snapshot(snap_path, space=space)
        assert recovered.objects.version == base_version
        for record in OpLog(log.path).read(
                after_version=recovered.objects.version):
            recovered.update(record.op)

    # the reference applies exactly the surviving prefix, from scratch
    reference = QueryEngine(tree, ObjectIndex(
        tree, random_objects(space, 5, seed=seed)))
    for op in ops[:len(survived)]:
        reference.update(op)

    # object set: version counter, ids, payloads
    assert recovered.objects.version == reference.objects.version
    assert recovered.objects.live_ids() == reference.objects.live_ids()
    for oid in reference.objects.live_ids():
        assert recovered.objects[oid] == reference.objects[oid]

    # ObjectIndex: structurally identical to the reference *and* to a
    # fresh rebuild over the recovered object set
    rec_oi, ref_oi = recovered.object_index, reference.object_index
    assert rec_oi.leaf_objects == ref_oi.leaf_objects
    assert rec_oi.access_lists == ref_oi.access_lists
    assert rec_oi.node_counts == ref_oi.node_counts
    assert rec_oi._entries == ref_oi._entries
    rebuilt = ObjectIndex(recovered.index, recovered.objects)
    assert rec_oi.access_lists == rebuilt.access_lists
    assert rec_oi.node_counts == rebuilt.node_counts

    # answers: bit-identical distance/kNN/range
    pts = [random_point(space, rng) for _ in range(6)]
    for a, b in zip(pts[:3], pts[3:]):
        assert recovered.distance(a, b) == reference.distance(a, b)
    k = min(4, len(reference.objects)) or 1
    for q in pts[:3]:
        assert [(n.distance, n.object_id) for n in recovered.knn(q, k)] == [
            (n.distance, n.object_id) for n in reference.knn(q, k)
        ]
        assert [(n.distance, n.object_id)
                for n in recovered.range_query(q, 30.0)] == [
            (n.distance, n.object_id)
            for n in reference.range_query(q, 30.0)
        ]
