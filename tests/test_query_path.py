"""Shortest-path queries: length equals distance, edges are real."""

import pytest

from repro import IndoorPoint, IPTree, VIPTree
from repro.baselines import DijkstraOracle
from repro.core.query_path import decompose_edge, path_length

from repro.testing import sample_points


@pytest.fixture(scope="module", params=["fig1", "tower", "office", "campus"])
def setting(request, all_fixture_spaces):
    space = all_fixture_spaces[request.param]
    ip = IPTree.build(space)
    vip = VIPTree.build(space)
    oracle = DijkstraOracle(space, ip.d2d)
    return space, ip, vip, oracle


def assert_valid_path(tree, result, s, t, expected):
    space = tree.space
    # length recomputed from the door sequence equals the reported and
    # expected distances
    assert result.distance == pytest.approx(expected, abs=1e-9)
    assert path_length(tree, result, s, t) == pytest.approx(expected, abs=1e-9)
    # consecutive doors are D2D edges (final edges only)
    for x, y in zip(result.doors, result.doors[1:]):
        assert tree.d2d.has_edge(x, y), f"{x}->{y} is not a final edge"
    # endpoints connect to their partitions
    if result.doors and isinstance(s, IndoorPoint):
        assert result.doors[0] in space.partitions[s.partition_id].door_ids
    if result.doors and isinstance(t, IndoorPoint):
        assert result.doors[-1] in space.partitions[t.partition_id].door_ids


class TestPathCorrectness:
    def test_paths_match_oracle_ip(self, setting):
        space, ip, _, oracle = setting
        pts = sample_points(space, 14, seed=21)
        for s, t in zip(pts[:7], pts[7:]):
            expected = oracle.shortest_distance(s, t)
            assert_valid_path(ip, ip.shortest_path(s, t), s, t, expected)

    def test_paths_match_oracle_vip(self, setting):
        space, _, vip, oracle = setting
        pts = sample_points(space, 14, seed=22)
        for s, t in zip(pts[:7], pts[7:]):
            expected = oracle.shortest_distance(s, t)
            assert_valid_path(vip, vip.shortest_path(s, t), s, t, expected)

    def test_door_to_door_paths(self, setting):
        space, ip, vip, oracle = setting
        step = max(1, space.num_doors // 8)
        doors = list(range(0, space.num_doors, step))
        for da, db in zip(doors, reversed(doors)):
            if da == db:
                continue
            expected = oracle.shortest_distance(da, db)
            for tree in (ip, vip):
                res = tree.shortest_path(da, db)
                assert res.distance == pytest.approx(expected, abs=1e-9)
                assert res.doors[0] == da and res.doors[-1] == db
                for x, y in zip(res.doors, res.doors[1:]):
                    assert tree.d2d.has_edge(x, y)

    def test_path_doors_never_repeat_consecutively(self, setting):
        space, ip, vip, _ = setting
        pts = sample_points(space, 10, seed=33)
        for s, t in zip(pts[:5], pts[5:]):
            for tree in (ip, vip):
                doors = tree.shortest_path(s, t).doors
                assert all(x != y for x, y in zip(doors, doors[1:]))


class TestSpecialCases:
    def test_same_partition_no_doors(self, fig1_space, fig1_iptree, fig1_viptree):
        room = fig1_space.fixture_rooms[1][2]
        s, t = IndoorPoint(room, 0.0, 0.0), IndoorPoint(room, 1.0, 1.0)
        for tree in (fig1_iptree, fig1_viptree):
            res = tree.shortest_path(s, t)
            assert res.doors == []
            assert res.distance == pytest.approx(2**0.5)

    def test_same_door(self, fig1_iptree, fig1_viptree):
        for tree in (fig1_iptree, fig1_viptree):
            res = tree.shortest_path(3, 3)
            assert res.distance == 0.0
            assert res.doors == [3]

    def test_same_leaf_path(self, fig1_space, fig1_iptree):
        rooms = fig1_space.fixture_rooms[0]
        s = IndoorPoint(rooms[0], 1.0, 1.5)
        t = IndoorPoint(rooms[4], 14.0, 1.5)
        res = fig1_iptree.shortest_path(s, t)
        assert res.stats.same_leaf
        assert len(res.doors) >= 2

    def test_num_hops_property(self, fig1_iptree, fig1_space):
        rooms = fig1_space.fixture_rooms
        s = IndoorPoint(rooms[0][0], 1.0, 1.0)
        t = IndoorPoint(rooms[3][3], 70.0, 1.0)
        res = fig1_iptree.shortest_path(s, t)
        assert res.num_hops == len(res.doors)


class TestDecomposition:
    def test_decompose_identity(self, fig1_iptree):
        assert decompose_edge(fig1_iptree, 2, 2) == [2]

    def test_decompose_endpoints_preserved(self, fig1_iptree, fig1_space):
        # decompose between the two exterior doors (west/east ends)
        ext = [d for d in range(fig1_space.num_doors) if fig1_space.is_exterior_door(d)]
        seq = decompose_edge(fig1_iptree, ext[0], ext[1])
        assert seq[0] == ext[0] and seq[-1] == ext[1]
        for x, y in zip(seq, seq[1:]):
            assert fig1_iptree.d2d.has_edge(x, y)

    def test_decomposed_length_is_shortest(self, fig1_iptree, fig1_oracle, fig1_space):
        ext = [d for d in range(fig1_space.num_doors) if fig1_space.is_exterior_door(d)]
        seq = decompose_edge(fig1_iptree, ext[0], ext[1])
        total = sum(
            fig1_iptree.d2d.edge_weight(x, y) for x, y in zip(seq, seq[1:])
        )
        assert total == pytest.approx(
            fig1_oracle.shortest_distance(ext[0], ext[1]), abs=1e-9
        )

    def test_vip_decompose_to(self, fig1_viptree, fig1_oracle):
        tree = fig1_viptree
        for door in range(0, tree.space.num_doors, 5):
            store = tree.vip_store[door]
            for target in list(store)[:4]:
                seq = tree.decompose_to(door, target)
                assert seq[0] == door and seq[-1] == target
                total = sum(
                    tree.d2d.edge_weight(x, y) for x, y in zip(seq, seq[1:])
                )
                assert total == pytest.approx(store[target][0], abs=1e-9)
