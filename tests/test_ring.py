"""HashRing: consistent-hash venue placement.

Pins the three properties the cluster leans on: resizing relocates
about 1/N of the venues (never more than 2/N), placement is a pure
function of membership (stable across instances and runs), and an
N-way placement always lands on N distinct shards.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ServingError
from repro.serving import DEFAULT_VNODES, HashRing


KEYS = [f"{i:016x}{i:016x}" for i in range(1000)]  # fingerprint-shaped


class TestPlacement:
    def test_nodes_for_returns_distinct_nodes_in_walk_order(self):
        ring = HashRing(range(5))
        for key in KEYS[:100]:
            placement = ring.nodes_for(key, 3)
            assert len(placement) == 3
            assert len(set(placement)) == 3
            assert ring.node_for(key) == placement[0]

    def test_count_is_capped_at_the_population(self):
        ring = HashRing(range(2))
        assert sorted(ring.nodes_for("abc", 5)) == [0, 1]

    def test_every_node_serves_as_some_primary(self):
        ring = HashRing(range(4))
        primaries = {ring.node_for(key) for key in KEYS}
        assert primaries == {0, 1, 2, 3}

    def test_empty_ring_refuses_placement(self):
        with pytest.raises(ServingError, match="no nodes"):
            HashRing().nodes_for("abc")

    def test_vnodes_validation(self):
        with pytest.raises(ServingError, match="vnodes"):
            HashRing(range(2), vnodes=0)


class TestStability:
    def test_identical_across_instances_and_insertion_order(self):
        a = HashRing([0, 1, 2, 3])
        b = HashRing([3, 1, 0, 2])
        for key in KEYS:
            assert a.nodes_for(key, 2) == b.nodes_for(key, 2)

    def test_add_then_remove_restores_every_placement(self):
        ring = HashRing(range(4))
        before = {key: ring.nodes_for(key, 2) for key in KEYS}
        ring.add_node(4)
        ring.remove_node(4)
        assert ring.nodes == {0, 1, 2, 3}
        for key in KEYS:
            assert ring.nodes_for(key, 2) == before[key]

    def test_membership_changes_are_idempotent(self):
        ring = HashRing(range(3))
        ring.add_node(1)
        ring.remove_node(99)
        assert ring.nodes == {0, 1, 2} and len(ring) == 3


class TestRelocationBound:
    @pytest.mark.parametrize("n", [3, 4, 8])
    def test_growing_by_one_moves_at_most_2_over_n(self, n):
        ring = HashRing(range(n))
        before = {key: ring.node_for(key) for key in KEYS}
        ring.add_node(n)
        moved = sum(before[key] != ring.node_for(key) for key in KEYS)
        assert 0 < moved <= 2 * len(KEYS) // n
        # and every moved venue moved *to* the new node — growth never
        # shuffles venues between pre-existing shards
        for key in KEYS:
            if ring.node_for(key) != before[key]:
                assert ring.node_for(key) == n

    def test_removing_one_node_only_moves_its_own_venues(self):
        ring = HashRing(range(5))
        before = {key: ring.node_for(key) for key in KEYS}
        ring.remove_node(2)
        for key in KEYS:
            if before[key] != 2:
                assert ring.node_for(key) == before[key]
            else:
                assert ring.node_for(key) != 2

    def test_default_vnodes_matches_export(self):
        assert HashRing(range(2)).vnodes == DEFAULT_VNODES
