"""Property test: random build → random update stream → save → load.

For any generated venue, any random object placement and any random
``UpdateOp`` sequence applied through the engine, a snapshot round-trip
must restore (a) an :class:`ObjectIndex` structurally identical to the
live one **and** to a from-scratch rebuild, (b) the object set with its
capacity, tombstones and version counter, and (c) an engine whose
distance / kNN / range answers are bit-identical to the live engine's.
"""

import random
import tempfile
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ObjectIndex, UpdateOp, VIPTree
from repro.datasets import random_objects, random_point
from repro.engine import QueryEngine
from strategies import venues

COMMON = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _random_ops(space, engine, rng, count):
    """Generate+apply a random insert/delete/move stream via the engine."""
    applied = []
    for _ in range(count):
        live = engine.objects.live_ids()
        roll = rng.random()
        if roll < 0.25 or len(live) < 2:
            op = UpdateOp("insert", location=random_point(space, rng),
                          label=f"w{len(applied)}")
        elif roll < 0.45:
            op = UpdateOp("delete", object_id=rng.choice(live))
        else:
            op = UpdateOp("move", object_id=rng.choice(live),
                          location=random_point(space, rng))
        engine.update(op)
        applied.append(op)
    return applied


@given(space=venues(), seed=st.integers(0, 2**16), n_ops=st.integers(4, 20))
@settings(**COMMON)
def test_update_stream_snapshot_round_trip(space, seed, n_ops):
    rng = random.Random(seed)
    tree = VIPTree.build(space)
    objects = random_objects(space, 6, seed=seed)
    live = QueryEngine(tree, ObjectIndex(tree, objects))
    _random_ops(space, live, rng, n_ops)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "prop.snap"
        live.save_snapshot(path)
        loaded = QueryEngine.from_snapshot(path, space=space)

    # (a) ObjectIndex structure: identical to the live index and to a
    # from-scratch rebuild over the restored set
    live_oi, restored = live.object_index, loaded.object_index
    assert restored.leaf_objects == live_oi.leaf_objects
    assert restored.access_lists == live_oi.access_lists
    assert restored.node_counts == live_oi.node_counts
    assert restored._entries == live_oi._entries
    rebuilt = ObjectIndex(loaded.index, loaded.objects)
    assert restored.access_lists == rebuilt.access_lists
    assert restored.node_counts == rebuilt.node_counts

    # (b) object set: ids, tombstones, capacity, version
    assert loaded.objects.capacity == live.objects.capacity
    assert loaded.objects.version == live.objects.version
    assert loaded.objects.live_ids() == live.objects.live_ids()
    for oid in live.objects.live_ids():
        assert loaded.objects[oid] == live.objects[oid]

    # (c) answers: bit-identical distance/kNN/range
    pts = [random_point(space, rng) for _ in range(6)]
    for a, b in zip(pts[:3], pts[3:]):
        assert live.distance(a, b) == loaded.distance(a, b)
    k = min(4, len(live.objects)) or 1
    for q in pts[:3]:
        assert [(n.distance, n.object_id) for n in live.knn(q, k)] == [
            (n.distance, n.object_id) for n in loaded.knn(q, k)
        ]
        assert [(n.distance, n.object_id) for n in live.range_query(q, 30.0)] == [
            (n.distance, n.object_id) for n in loaded.range_query(q, 30.0)
        ]
