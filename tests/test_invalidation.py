"""Leaf-scoped cache invalidation: tag bookkeeping, scoped == full
equivalence on interleaved update+query streams, and the move scope
rules.

The headline guarantee is correctness, not speed: a scoped engine must
answer **element-wise identically** to a full-flush engine on arbitrary
interleavings of updates and queries — hypothesis-tested across all
fixture venues, both tree kinds and both kernel backends. The speed win
is asserted separately in ``benchmarks/bench_invalidation.py``.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import IPTree, ObjectIndex, UpdateOp, VIPTree
from repro.core.context import endpoint_key
from repro.core.query_knn import knn
from repro.core.query_range import range_query
from repro.core.results import QueryStats
from repro.datasets import random_objects, random_point
from repro.engine import QueryEngine, TaggedLRUCache
from repro.exceptions import QueryError
from repro.kernels import HAVE_NUMPY, NumpyKernels
from repro.testing import sample_points

VENUES = ["fig1", "tower", "mall", "office", "campus"]
TREE_KINDS = {"ip": IPTree, "vip": VIPTree}
KERNELS = ["python"] + (["numpy"] if HAVE_NUMPY else [])


@pytest.fixture(scope="module")
def built(all_fixture_spaces):
    """``(space, tree)`` per (venue, tree-kind) pair — object sets are
    per-test (updates mutate them)."""
    out = {}
    for venue, space in all_fixture_spaces.items():
        for kind, cls in TREE_KINDS.items():
            out[venue, kind] = (space, cls.build(space))
    return out


# ----------------------------------------------------------------------
# TaggedLRUCache: tag bookkeeping stays consistent with the entries
# ----------------------------------------------------------------------
class TestTaggedLRUCache:
    def test_put_tags_and_invalidate_leaves_scopes(self):
        cache = TaggedLRUCache(8)
        cache.put("a", 1, frozenset({10, 11}))
        cache.put("b", 2, frozenset({11, 12}))
        cache.put("c", 3, frozenset({30}))
        assert cache.invalidate_leaves({11}) == 2  # a and b, not c
        assert "c" in cache and "a" not in cache and "b" not in cache
        assert cache.leaves_of("c") == frozenset({30})
        with pytest.raises(KeyError):
            cache.leaves_of("a")

    def test_all_tagged_entries_drop_on_any_invalidation(self):
        cache = TaggedLRUCache(8)
        cache.put("all", 1, None)       # explicit ALL
        cache["setitem"] = 2            # plain writes default to ALL
        cache.put("leaf", 3, frozenset({5}))
        assert cache.leaves_of("all") is None
        assert cache.leaves_of("setitem") is None
        assert cache.invalidate_leaves({999}) == 2  # both ALL entries
        assert "leaf" in cache and len(cache) == 1

    def test_overwrite_replaces_tag(self):
        cache = TaggedLRUCache(8)
        cache.put("k", 1, frozenset({1}))
        cache.put("k", 2, frozenset({2}))
        assert cache.invalidate_leaves({1}) == 0
        assert cache.get("k") == 2
        assert cache.invalidate_leaves({2}) == 1

    def test_lru_eviction_untags(self):
        cache = TaggedLRUCache(2)
        cache.put("a", 1, frozenset({1}))
        cache.put("b", 2, frozenset({1}))
        cache.put("c", 3, frozenset({1}))  # evicts "a"
        assert cache.evictions == 1 and "a" not in cache
        # the evicted key must be gone from the inverted index too
        assert cache.invalidate_leaves({1}) == 2

    def test_invalidate_all_and_clear_reset_tags(self):
        cache = TaggedLRUCache(8)
        cache.put("a", 1, frozenset({1}))
        cache.put("b", 2, None)
        assert cache.invalidate_all() == 2
        assert len(cache) == 0
        cache.put("a", 1, frozenset({1}))
        cache.clear()
        assert cache.invalidate_leaves({1}) == 0

    def test_counters_survive_invalidation(self):
        cache = TaggedLRUCache(8)
        cache.put("a", 1, frozenset({1}))
        assert cache.get("a") == 1
        assert cache.get("zzz") is None
        cache.invalidate_leaves({1})
        assert cache.hits == 1 and cache.misses == 1


# ----------------------------------------------------------------------
# Leaf-ball capture: both backends agree on the conservative closure
# ----------------------------------------------------------------------
@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not importable")
@pytest.mark.parametrize("kind", list(TREE_KINDS))
@pytest.mark.parametrize("venue", VENUES)
def test_backends_capture_identical_leaf_balls(built, venue, kind):
    space, tree = built[venue, kind]
    index = ObjectIndex(tree, random_objects(space, 10, seed=43))
    kern = NumpyKernels()
    for q in sample_points(space, 5, seed=3):
        for k in (1, 3, 25):
            py, np_ = QueryStats(), QueryStats()
            assert knn(tree, index, q, k, stats=py, collect_leaves=True) == \
                knn(tree, index, q, k, kernels=kern, stats=np_,
                    collect_leaves=True)
            assert py.result_leaves == np_.result_leaves
            if k <= 10:  # enough objects: a real bound, a real tag
                assert py.result_leaves is not None
        for radius in (5.0, 40.0):
            py, np_ = QueryStats(), QueryStats()
            assert range_query(tree, index, q, radius, stats=py,
                               collect_leaves=True) == \
                range_query(tree, index, q, radius, kernels=kern, stats=np_,
                            collect_leaves=True)
            assert py.result_leaves == np_.result_leaves
            assert py.result_leaves is not None


# ----------------------------------------------------------------------
# The headline property: scoped == full on interleaved streams
# ----------------------------------------------------------------------
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_scoped_equals_full_on_interleaved_streams(built, seed):
    """Two engines over identically seeded object sets — one scoped, one
    full-flush — fed the same interleaved update+query stream must agree
    element-wise on every answer. Queries repeat from a small pool so
    the scoped engine actually serves from (potentially stale, if the
    scoping were wrong) cached entries."""
    rng = random.Random(seed)
    venue = rng.choice(VENUES)
    kind = rng.choice(list(TREE_KINDS))
    kern = rng.choice(KERNELS)
    space, tree = built[venue, kind]
    engines = [
        QueryEngine(tree, random_objects(space, 10, seed=seed % 1009),
                    kernels=kern, invalidation=mode)
        for mode in ("scoped", "full")
    ]
    pool = sample_points(space, 5, seed=(seed % 83) + 2)
    live = [o.object_id for o in engines[0].objects]
    for _ in range(rng.randint(5, 25)):
        action = rng.random()
        if action < 0.25:
            op = rng.choice(("insert", "delete", "move"))
            if op == "insert" or not live:
                loc = random_point(space, rng)
                ids = {e.insert_object(loc) for e in engines}
                assert len(ids) == 1
                live.append(ids.pop())
            elif op == "delete":
                oid = live.pop(rng.randrange(len(live)))
                for e in engines:
                    e.delete_object(oid)
            else:
                oid = rng.choice(live)
                loc = random_point(space, rng)
                for e in engines:
                    e.move_object(oid, loc)
        elif action < 0.65:
            q = rng.choice(pool)
            k = rng.randint(1, 12)
            assert engines[0].knn(q, k) == engines[1].knn(q, k)
        else:
            q = rng.choice(pool)
            r = rng.choice([3.0, 15.0, 60.0])
            assert engines[0].range_query(q, r) == engines[1].range_query(q, r)
    for q in pool:  # final full sweep over the pool
        assert engines[0].knn(q, 3) == engines[1].knn(q, 3)
        assert engines[0].range_query(q, 25.0) == engines[1].range_query(q, 25.0)
    s0, s1 = engines[0].stats(), engines[1].stats()
    # every engine-routed update is leaf-attributable: never a full flush
    assert s0.full_invalidations == 0
    assert s0.scoped_invalidations == s0.updates
    assert s1.scoped_invalidations == 0
    assert s1.invalidations == s0.invalidations  # back-compat sum agrees


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_scoped_equals_full_under_batch_update(built, seed):
    """batch_update folds the batch's leaves into one scoped event; the
    answers must still match a full-flush engine exactly."""
    rng = random.Random(seed)
    venue = rng.choice(VENUES)
    space, tree = built[venue, "vip"]
    kern = rng.choice(KERNELS)
    engines = [
        QueryEngine(tree, random_objects(space, 12, seed=seed % 997),
                    kernels=kern, invalidation=mode)
        for mode in ("scoped", "full")
    ]
    pool = sample_points(space, 4, seed=(seed % 71) + 1)
    for q in pool:
        assert engines[0].knn(q, 4) == engines[1].knn(q, 4)
    live = [o.object_id for o in engines[0].objects]
    ops = [
        UpdateOp("move", object_id=rng.choice(live),
                 location=random_point(space, rng))
        for _ in range(rng.randint(1, 5))
    ]
    for e in engines:
        e.batch_update(ops)
    for q in pool:
        assert engines[0].knn(q, 4) == engines[1].knn(q, 4)
        assert engines[0].range_query(q, 20.0) == engines[1].range_query(q, 20.0)
    s = engines[0].stats()
    assert s.scoped_invalidations == 1 and s.full_invalidations == 0


# ----------------------------------------------------------------------
# Move scope rules
# ----------------------------------------------------------------------
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_move_drops_exactly_entries_tagged_with_either_leaf(built, seed):
    """A move invalidates precisely the entries tagged with the source
    or destination leaf (or ALL) — and nothing else."""
    rng = random.Random(seed)
    venue = rng.choice(VENUES)
    kind = rng.choice(list(TREE_KINDS))
    kern = rng.choice(KERNELS)
    space, tree = built[venue, kind]
    engine = QueryEngine(tree, random_objects(space, 12, seed=seed % 991),
                         kernels=kern)
    for q in sample_points(space, 6, seed=(seed % 89) + 1):
        engine.knn(q, rng.randint(1, 5))
        engine.range_query(q, rng.choice([4.0, 20.0, 80.0]))
    caches = {"knn": engine._knn_cache, "range": engine._range_cache}
    before = {
        (name, key): cache.leaves_of(key)
        for name, cache in caches.items()
        for key in list(cache._data)
    }
    assert before  # the pool populated something
    live = [o.object_id for o in engine.objects]
    oid = rng.choice(live)
    leaf_before = engine.object_index.leaf_of_object(oid)
    engine.move_object(oid, random_point(space, rng))
    leaf_after = engine.object_index.leaf_of_object(oid)
    touched = {leaf_before, leaf_after}
    for (name, key), tag in before.items():
        should_drop = tag is None or bool(tag & touched)
        assert (key not in caches[name]) == should_drop


@pytest.mark.parametrize("kern", KERNELS)
def test_same_leaf_move_outside_bound_balls_drops_nothing(mall_space, kern):
    """The fast path the benchmark exploits: a same-leaf move of an
    object outside every cached bound ball drops zero entries, and the
    next identical queries are pure hits."""
    space = mall_space
    tree = VIPTree.build(space)
    engine = QueryEngine(tree, random_objects(space, 20, seed=5), kernels=kern)
    rng = random.Random(6)
    q = random_point(space, rng)
    near = engine.insert_object(q)  # co-located: the k=1 bound is 0.0
    assert engine.knn(q, 1)[0].object_id == near
    tag = engine._knn_cache.leaves_of((endpoint_key(q), 1))
    assert tag is not None
    # a victim object whose leaf is outside the cached bound ball
    victim = next(
        oid for oid in (o.object_id for o in engine.objects)
        if engine.object_index.leaf_of_object(oid) not in tag
    )
    victim_leaf = engine.object_index.leaf_of_object(victim)
    pid = engine.objects[victim].location.partition_id
    s0 = engine.stats()
    engine.move_object(victim, random_point(space, rng, partitions=[pid]))
    assert engine.object_index.leaf_of_object(victim) == victim_leaf
    s1 = engine.stats()
    assert s1.scoped_invalidations == s0.scoped_invalidations + 1
    assert s1.invalidation_entries_dropped == s0.invalidation_entries_dropped
    assert engine.knn(q, 1)[0].object_id == near
    s2 = engine.stats()
    assert s2.knn_hits == s1.knn_hits + 1  # served from cache, no recompute


# ----------------------------------------------------------------------
# Fallbacks and guard rails
# ----------------------------------------------------------------------
def test_out_of_band_mutation_falls_back_to_full_flush(mall_space):
    tree = VIPTree.build(mall_space)
    engine = QueryEngine(tree, random_objects(mall_space, 10, seed=8))
    rng = random.Random(9)
    q = random_point(mall_space, rng)
    engine.knn(q, 2)
    new_id = engine.object_index.insert(q)  # bypasses the engine
    assert engine.knn(q, 2)[0].object_id == new_id  # not stale
    s = engine.stats()
    assert s.full_invalidations == 1
    assert len(engine._knn_cache) == 1  # only the recomputed entry


def test_full_mode_restores_flush_semantics(mall_space):
    tree = VIPTree.build(mall_space)
    engine = QueryEngine(tree, random_objects(mall_space, 10, seed=10),
                         invalidation="full")
    rng = random.Random(11)
    for q in sample_points(mall_space, 4, seed=12):
        engine.knn(q, 2)
    assert len(engine._knn_cache) == 4
    engine.insert_object(random_point(mall_space, rng))
    assert len(engine._knn_cache) == 0  # everything flushed
    s = engine.stats()
    assert s.full_invalidations == 1 and s.scoped_invalidations == 0


def test_invalid_invalidation_mode_rejected(mall_space):
    tree = VIPTree.build(mall_space)
    with pytest.raises(QueryError, match="invalidation"):
        QueryEngine(tree, invalidation="lazy")


def test_distance_and_path_caches_survive_scoped_updates(mall_space):
    tree = VIPTree.build(mall_space)
    engine = QueryEngine(tree, random_objects(mall_space, 10, seed=13))
    rng = random.Random(14)
    s, t = random_point(mall_space, rng), random_point(mall_space, rng)
    d = engine.distance(s, t)
    engine.insert_object(random_point(mall_space, rng))
    assert engine.distance(s, t) == d
    stats = engine.stats()
    assert stats.distance_hits == 1 and stats.distance_misses == 1
