"""Observability layer end to end: registry semantics, cross-process
merge, tracing, per-query stats on the wire, and the slow-query log.

The cluster-facing guarantees are the ones the serving stack documents:
``ClusterFrontend.metrics()`` merges every live shard's registry with
the frontend's own (counters add, histogram buckets add, quantiles
annotate), a client-supplied trace id round-trips frontend -> shard ->
engine, and a request slower than the configured threshold produces
exactly one structured slow-query record carrying that trace id.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.results import QueryStats
from repro.datasets import build_mall, build_office, random_objects, random_point
from repro.engine import QueryEngine
from repro.exceptions import ProtocolError
from repro.model.io_json import canonical_dumps
from repro.obs import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    Observation,
    SlowQueryLog,
    Trace,
    current_observation,
    merge_snapshots,
    metric_key,
    observing,
    quantile,
    read_slowlog,
    render_prometheus,
    summarize,
)
from repro.serving import (
    ClusterFrontend,
    ClusterStats,
    Request,
    Response,
    ServingFrontend,
    VenueRouter,
    stats_from_doc,
    stats_to_doc,
)
from repro.serving.protocol import (
    reply_from_doc,
    reply_to_doc,
    request_from_doc,
    request_to_doc,
)
from repro.storage import SnapshotCatalog
from repro.testing import ClusterFaultHarness
import random


# ----------------------------------------------------------------------
# Registry primitives
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_labels_and_get_or_create(self):
        reg = MetricsRegistry()
        c1 = reg.counter("requests_total", kind="knn")
        c1.inc()
        c1.inc(3)
        assert reg.counter("requests_total", kind="knn") is c1
        snap = reg.snapshot()
        key = metric_key("requests_total", {"kind": "knn"})
        assert snap["counters"][key]["value"] == 4
        assert snap["counters"][key]["labels"] == {"kind": "knn"}

    def test_snapshot_is_canonical_json_encodable(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(0.5)
        reg.histogram("h").observe(0.01)
        reg.histogram("empty")  # min/max None must still encode
        canonical_dumps(reg.snapshot())  # raises on non-JSON values

    def test_histogram_counts_sum_min_max(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency_seconds")
        for v in (0.001, 0.002, 0.004, 100.0):  # last one overflows
            h.observe(v)
        doc = reg.snapshot()["histograms"][metric_key("latency_seconds", {})]
        assert doc["count"] == 4
        assert doc["sum"] == pytest.approx(100.007)
        assert doc["min"] == pytest.approx(0.001)
        assert doc["max"] == pytest.approx(100.0)
        assert sum(doc["counts"]) == 4
        assert len(doc["counts"]) == len(LATENCY_BUCKETS) + 1
        assert doc["counts"][-1] == 1  # the overflow observation

    def test_quantiles_clamped_to_observed_range(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.observe(0.003)
        doc = reg.snapshot()["histograms"][metric_key("h", {})]
        # a single observation estimates exactly: clamped to [min, max]
        assert quantile(doc, 0.5) == pytest.approx(0.003)
        assert quantile(doc, 0.99) == pytest.approx(0.003)

    def test_quantile_of_empty_histogram_is_none(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        doc = reg.snapshot()["histograms"][metric_key("h", {})]
        assert quantile(doc, 0.5) is None

    def test_quantile_orders_with_distribution(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for _ in range(90):
            h.observe(0.0012)
        for _ in range(10):
            h.observe(0.9)
        doc = reg.snapshot()["histograms"][metric_key("h", {})]
        p50, p99 = quantile(doc, 0.5), quantile(doc, 0.99)
        assert p50 < 0.01 < p99
        assert p99 <= 0.9 + 1e-9

    def test_timer_context_records_one_observation(self):
        reg = MetricsRegistry()
        with reg.histogram("t").time():
            pass
        doc = reg.snapshot()["histograms"][metric_key("t", {})]
        assert doc["count"] == 1
        assert doc["sum"] >= 0.0


class TestConcurrentRecording:
    def test_multithreaded_observes_sum_exactly_at_quiescence(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        c = reg.counter("c")
        threads, per_thread = 8, 2000

        def work():
            for _ in range(per_thread):
                h.observe(0.001)
                c.inc()

        pool = [threading.Thread(target=work) for _ in range(threads)]
        for t in pool:
            t.start()
        # snapshots taken mid-flight must stay internally consistent
        mid = reg.snapshot()["histograms"][metric_key("h", {})]
        assert sum(mid["counts"]) == mid["count"]
        for t in pool:
            t.join()
        snap = reg.snapshot()
        doc = snap["histograms"][metric_key("h", {})]
        assert doc["count"] == threads * per_thread
        assert sum(doc["counts"]) == threads * per_thread
        assert doc["sum"] == pytest.approx(threads * per_thread * 0.001)
        assert snap["counters"][metric_key("c", {})]["value"] == threads * per_thread


class TestMergeSnapshots:
    def _loaded_registry(self, n):
        reg = MetricsRegistry()
        reg.counter("reqs").inc(n)
        reg.gauge("depth", agg="sum").set(float(n))
        reg.gauge("peak", agg="max").set(float(n))
        h = reg.histogram("lat")
        for i in range(n):
            h.observe(0.001 * (i + 1))
        return reg

    def test_merge_equals_sum_of_parts(self):
        docs = [self._loaded_registry(n).snapshot() for n in (3, 5, 7)]
        merged = merge_snapshots(docs)
        ck = metric_key("reqs", {})
        assert merged["counters"][ck]["value"] == 15
        hk = metric_key("lat", {})
        assert merged["histograms"][hk]["count"] == 15
        assert merged["histograms"][hk]["sum"] == pytest.approx(
            sum(d["histograms"][hk]["sum"] for d in docs))
        assert merged["histograms"][hk]["counts"] == [
            sum(d["histograms"][hk]["counts"][i] for d in docs)
            for i in range(len(LATENCY_BUCKETS) + 1)
        ]
        assert merged["gauges"][metric_key("depth", {})]["value"] == 15.0
        assert merged["gauges"][metric_key("peak", {})]["value"] == 7.0

    def test_merge_does_not_mutate_inputs(self):
        a = self._loaded_registry(2).snapshot()
        b = self._loaded_registry(3).snapshot()
        before = json.dumps(a, sort_keys=True)
        merge_snapshots([a, b])
        assert json.dumps(a, sort_keys=True) == before

    def test_summarize_annotates_quantiles(self):
        doc = summarize(self._loaded_registry(100).snapshot())
        hist = doc["histograms"][metric_key("lat", {})]
        for label in ("p50", "p95", "p99", "mean"):
            assert hist[label] is not None
        assert hist["p50"] <= hist["p95"] <= hist["p99"]


class TestPrometheusRendering:
    def test_counter_gauge_histogram_lines(self):
        reg = MetricsRegistry()
        reg.counter("reqs_total", kind="knn").inc(2)
        reg.gauge("depth").set(3.0)
        h = reg.histogram("lat_seconds")
        h.observe(0.5)
        h.observe(99.0)  # overflow bucket
        text = render_prometheus(reg.snapshot())
        assert '# TYPE reqs_total counter' in text
        assert 'reqs_total{kind="knn"} 2' in text
        assert '# TYPE lat_seconds histogram' in text
        assert 'le="+Inf"} 2' in text
        assert "lat_seconds_count 2" in text
        # buckets are cumulative: every bucket line's value <= count
        bucket_values = [
            int(line.rsplit(" ", 1)[1]) for line in text.splitlines()
            if line.startswith("lat_seconds_bucket")
        ]
        assert bucket_values == sorted(bucket_values)


# ----------------------------------------------------------------------
# Tracing and the thread-local observation
# ----------------------------------------------------------------------
class TestTracing:
    def test_span_records_even_when_block_raises(self):
        trace = Trace("abc")
        with pytest.raises(RuntimeError):
            with trace.span("boom"):
                raise RuntimeError("x")
        assert [s["name"] for s in trace.spans] == ["boom"]

    def test_doc_round_trip(self):
        trace = Trace("feedface")
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        doc = trace.to_doc()
        back = Trace.from_doc(json.loads(json.dumps(doc)))
        assert back.trace_id == "feedface"
        # spans complete innermost-first
        assert [s["name"] for s in back.spans] == ["inner", "outer"]

    def test_observing_installs_and_restores(self):
        assert current_observation() is None
        outer = Observation(Trace(), want_stats=True)
        inner = Observation(None)
        with observing(outer):
            assert current_observation() is outer
            with observing(inner):
                assert current_observation() is inner
            assert current_observation() is outer
        assert current_observation() is None


# ----------------------------------------------------------------------
# Stats on the wire
# ----------------------------------------------------------------------
class TestStatsCodec:
    def test_query_stats_round_trip(self):
        stats = QueryStats(pairs_considered=4, superior_pairs=2,
                           nodes_visited=9, heap_pops=5,
                           list_entries_scanned=11, same_leaf=True,
                           cache_hit=True)
        back = stats_from_doc(stats_to_doc(stats))
        assert back == stats
        assert stats_to_doc(None) is None
        assert stats_from_doc(None) is None

    def test_malformed_stats_doc_raises(self):
        with pytest.raises(ProtocolError):
            stats_from_doc({"pairs_considered": "not-a-number"})

    def test_request_trace_and_include_stats_round_trip(self):
        request = Request(venue="v", kind="knn", k=3, trace="cafe01",
                          include_stats=True)
        back, request_id = request_from_doc(request_to_doc(request, 7))
        assert request_id == 7
        assert back.trace == "cafe01"
        assert back.include_stats is True
        plain, _ = request_from_doc(request_to_doc(
            Request(venue="v", kind="ping"), 8))
        assert plain.trace is None and plain.include_stats is False

    def test_reply_riders_round_trip_and_stay_optional(self):
        stats_doc = stats_to_doc(QueryStats(nodes_visited=3))
        trace_doc = {"id": "aa", "spans": [{"name": "engine.knn",
                                            "seconds": 0.001}]}
        reply = Response(5, {"kind": "none"}, stats=stats_doc,
                         trace=trace_doc)
        doc = reply_to_doc(reply)
        back = reply_from_doc(doc)
        assert back.stats == stats_doc
        assert back.trace == trace_doc
        # plain replies carry no rider keys: old wire format, unchanged
        plain_doc = reply_to_doc(Response(6, {"kind": "none"}))
        assert "stats" not in plain_doc and "trace" not in plain_doc

    def test_query_stats_merge_accumulates(self):
        a = QueryStats(nodes_visited=2, heap_pops=1)
        b = QueryStats(nodes_visited=3, same_leaf=True)
        a.merge(b)
        assert a.nodes_visited == 5 and a.heap_pops == 1 and a.same_leaf


# ----------------------------------------------------------------------
# Engine instrumentation
# ----------------------------------------------------------------------
class TestEngineInstrumentation:
    @pytest.fixture()
    def venue(self, fig1_space, fig1_viptree):
        objects = random_objects(fig1_space, 16, seed=11)
        return fig1_space, fig1_viptree, objects

    def test_instrumented_engine_answers_identically(self, venue):
        space, tree, objects = venue
        reg = MetricsRegistry()
        bare = QueryEngine(tree, objects, cache=False)
        timed = QueryEngine(tree, objects, cache=False, registry=reg)
        rng = random.Random(3)
        for _ in range(6):
            q = random_point(space, rng)
            assert timed.knn(q, 3) == bare.knn(q, 3)
        hist = reg.snapshot()["histograms"][
            metric_key("engine_query_seconds", {"kind": "knn"})]
        assert hist["count"] == 6

    def test_stats_out_param_and_cache_hit_flag(self, venue):
        space, tree, objects = venue
        engine = QueryEngine(tree, objects, cache=True)
        q = random_point(space, random.Random(5))
        miss = QueryStats()
        engine.knn(q, 3, stats=miss)
        assert not miss.cache_hit
        assert miss.nodes_visited + miss.list_entries_scanned > 0
        hit = QueryStats()
        engine.knn(q, 3, stats=hit)
        assert hit.cache_hit

    def test_collector_exports_engine_counters(self, venue):
        space, tree, objects = venue
        reg = MetricsRegistry()
        engine = QueryEngine(tree, objects, cache=True, registry=reg)
        q = random_point(space, random.Random(7))
        engine.knn(q, 2)
        engine.knn(q, 2)
        snap = reg.snapshot()
        counters = {e["name"]: e["value"] for e in snap["counters"].values()}
        assert counters["engine_knn_queries_total"] == 2
        ratio = snap["gauges"][metric_key("engine_cache_hit_ratio", {})]
        assert 0.0 <= ratio["value"] <= 1.0
        kernel = [e for e in snap["counters"].values()
                  if e["name"] == "engine_kernel_queries_total"]
        assert kernel and kernel[0]["value"] == 2

    def test_collector_exports_invalidation_split(self, venue):
        """The scoped/full invalidation split is exported alongside the
        legacy total, and the total is exactly their sum."""
        space, tree, objects = venue
        reg = MetricsRegistry()
        engine = QueryEngine(tree, objects, cache=True, registry=reg)
        rng = random.Random(9)
        q = random_point(space, rng)
        engine.knn(q, 2)
        engine.insert_object(random_point(space, rng))  # scoped event
        engine.object_index.insert(random_point(space, rng))  # out-of-band
        engine.knn(q, 2)  # version check -> full-flush event
        snap = reg.snapshot()
        counters = {e["name"]: e["value"] for e in snap["counters"].values()}
        assert counters["engine_scoped_invalidations_total"] == 1
        assert counters["engine_full_invalidations_total"] == 1
        assert counters["engine_invalidations_total"] == (
            counters["engine_scoped_invalidations_total"]
            + counters["engine_full_invalidations_total"]
        )
        assert counters["engine_invalidation_entries_dropped_total"] >= 1
        hist = snap["histograms"][
            metric_key("engine_invalidation_seconds", {})]
        assert hist["count"] == 2  # one scoped + one full event observed

    def test_dead_engine_series_retire(self, venue):
        import gc

        space, tree, objects = venue
        reg = MetricsRegistry()
        engine = QueryEngine(tree, objects, cache=False, registry=reg)
        engine.knn(random_point(space, random.Random(1)), 2)
        assert any(e["name"] == "engine_knn_queries_total"
                   for e in reg.snapshot()["counters"].values())
        del engine
        gc.collect()
        assert not any(e["name"] == "engine_knn_queries_total"
                       for e in reg.snapshot()["counters"].values())


# ----------------------------------------------------------------------
# Router + frontend instrumentation (in-process)
# ----------------------------------------------------------------------
class TestServingInstrumentation:
    def test_router_frontend_and_oplog_series(self, tmp_path):
        space = build_mall("tiny", name="obs-mall")
        objects = random_objects(space, 8, seed=2)
        reg = MetricsRegistry()
        router = VenueRouter(SnapshotCatalog(tmp_path), capacity=4,
                             oplog=True, registry=reg)
        vid = router.add_venue(space, objects=objects)
        rng = random.Random(9)
        with ServingFrontend(router, workers=2, registry=reg) as frontend:
            for _ in range(5):
                frontend.request(vid, "knn", source=random_point(space, rng),
                                 k=2).result(timeout=30.0)
            from repro.model.objects import UpdateOp
            frontend.request(vid, "update", op=UpdateOp(
                kind="insert", location=random_point(space, rng),
                label="cart", category="cart")).result(timeout=30.0)
        snap = reg.snapshot()
        counters = {e["name"]: e["value"] for e in snap["counters"].values()}
        assert counters["router_warm_starts_total"] >= 1
        assert counters["router_requests_total"] >= 6
        assert counters["frontend_completed_total"] == 6
        hists = {e["name"]: e for e in snap["histograms"].values()}
        assert hists["router_warm_start_seconds"]["count"] >= 1
        assert hists["oplog_append_seconds"]["count"] >= 1
        knn_key = metric_key("frontend_request_seconds", {"kind": "knn"})
        assert snap["histograms"][knn_key]["count"] == 5

    def test_router_slowlog_via_injected_latency(self, tmp_path):
        space = build_mall("tiny", name="obs-slow")
        objects = random_objects(space, 6, seed=4)
        log_path = tmp_path / "slow.jsonl"
        router = VenueRouter(SnapshotCatalog(tmp_path / "cat"),
                             registry=MetricsRegistry(),
                             slow_query_threshold=0.02,
                             slowlog_path=log_path)
        vid = router.add_venue(space, objects=objects)
        rng = random.Random(6)
        router.execute(Request(venue=vid, kind="knn",
                               source=random_point(space, rng), k=2))
        assert router.slowlog.emitted == 0
        assert router.inject_latency(0.05, count=1) == 1
        router.execute(Request(venue=vid, kind="knn",
                               source=random_point(space, rng), k=2))
        records = router.slowlog.records()
        assert len(records) == 1
        assert records[0]["venue"] == vid and records[0]["kind"] == "knn"
        assert records[0]["seconds"] >= 0.02
        on_disk = read_slowlog(log_path)
        assert len(on_disk) == 1 and on_disk[0]["venue"] == vid


class TestSlowQueryLogUnit:
    def test_threshold_gates_and_file_appends(self, tmp_path):
        path = tmp_path / "obs" / "slow.jsonl"
        log = SlowQueryLog(0.01, path=path)
        assert log.record(venue="v", kind="knn", seconds=0.001) is None
        doc = log.record(venue="v", kind="knn", seconds=0.5,
                         trace={"id": "t", "spans": []})
        assert doc is not None and log.emitted == 1
        # torn tail is skipped, intact prefix survives
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"torn": ')
        records = read_slowlog(path)
        assert len(records) == 1 and records[0]["venue"] == "v"

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError):
            SlowQueryLog(0.0)


# ----------------------------------------------------------------------
# Cluster: merged metrics, trace round-trip, slow-query regression
# ----------------------------------------------------------------------
class TestClusterObservability:
    def _spaces(self):
        return [build_mall("tiny", name="obs-A"),
                build_office("tiny", name="obs-B")]

    def test_cluster_metrics_merges_all_shards(self, tmp_path):
        spaces = self._spaces()
        with ClusterFrontend(tmp_path, shards=2, flush_interval=0) as cluster:
            ids = [cluster.add_venue(s, objects=random_objects(s, 6, seed=i))
                   for i, s in enumerate(spaces)]
            rng = random.Random(8)
            for vid, space in zip(ids, spaces):
                for _ in range(4):
                    cluster.request(vid, "knn",
                                    source=random_point(space, rng),
                                    k=2).result(timeout=60.0)
            cluster.drain()
            shard_docs = cluster.shard_metrics()
            assert len(shard_docs) == 2
            merged = cluster.metrics()
            # merged counters equal the sum of the per-shard snapshots
            for key, entry in merge_snapshots(shard_docs)["counters"].items():
                assert merged["counters"][key]["value"] == entry["value"]
            hists = {e["name"]: e for e in merged["histograms"].values()}
            knn = merged["histograms"][
                metric_key("engine_query_seconds", {"kind": "knn"})]
            assert knn["count"] == 8
            for q in ("p50", "p95", "p99"):
                assert knn[q] is not None
            assert hists["shard_request_seconds"]["count"] >= 1
            counters = {e["name"] for e in merged["counters"].values()}
            assert "cluster_submitted_total" in counters
            assert "router_requests_total" in counters

    def test_trace_and_stats_round_trip_through_cluster(self, tmp_path):
        space = self._spaces()[0]
        with ClusterFrontend(tmp_path, shards=2, flush_interval=0) as cluster:
            vid = cluster.add_venue(space,
                                    objects=random_objects(space, 6, seed=1))
            rng = random.Random(2)
            q = random_point(space, rng)
            reply = cluster.submit(
                Request(venue=vid, kind="knn", source=q, k=3,
                        trace="0123456789abcdef", include_stats=True),
                raw_reply=True,
            ).result(timeout=60.0)
            assert isinstance(reply, Response)
            assert reply.trace["id"] == "0123456789abcdef"
            names = [s["name"] for s in reply.trace["spans"]]
            assert names == ["engine.knn", "router.knn", "shard.knn"]
            stats = reply.query_stats()
            assert stats is not None
            assert stats.nodes_visited + stats.list_entries_scanned > 0
            # the plain path still decodes values, rider-free
            plain = cluster.request(vid, "knn", source=q,
                                    k=3).result(timeout=60.0)
            assert plain == reply.value()

    def test_slow_query_log_records_exactly_one_traced_request(self, tmp_path):
        space = self._spaces()[0]
        with ClusterFrontend(tmp_path, shards=2, flush_interval=0,
                             slow_query_threshold=0.02) as cluster:
            vid = cluster.add_venue(space,
                                    objects=random_objects(space, 6, seed=3))
            harness = ClusterFaultHarness(cluster)
            primary = cluster.shard_for(vid)
            rng = random.Random(4)
            # a fast query first: must NOT trip the threshold
            cluster.request(vid, "knn", source=random_point(space, rng),
                            k=2).result(timeout=60.0)
            assert harness.slow_requests(primary, 0.08, count=1) == 1
            reply = cluster.submit(
                Request(venue=vid, kind="knn",
                        source=random_point(space, rng), k=2,
                        trace="deadbeefdeadbeef", include_stats=True),
                raw_reply=True,
            ).result(timeout=60.0)
            cluster.drain()
            records = read_slowlog(
                tmp_path / "obs" / f"slowlog-shard{primary}.jsonl")
            assert len(records) == 1
            record = records[0]
            assert record["venue"] == vid
            assert record["kind"] == "knn"
            assert record["seconds"] >= 0.02
            assert record["trace"]["id"] == "deadbeefdeadbeef"
            assert record["stats"] is not None
            assert reply.trace["id"] == "deadbeefdeadbeef"


# ----------------------------------------------------------------------
# Stats schema unification
# ----------------------------------------------------------------------
class TestStatsDocSchema:
    def test_cluster_stats_doc_and_log_line(self):
        stats = ClusterStats(shards=2, alive=2, venues=3, submitted=10,
                             by_shard={0: 2, 1: 1})
        doc = stats.to_doc()
        assert doc["by_shard"] == {"0": 2, "1": 1}  # wire-safe keys
        line = stats.log_line()
        assert line.startswith("ClusterStats ")
        assert "submitted=10" in line

    def test_shard_stats_doc_keeps_contract_keys(self, tmp_path):
        space = build_mall("tiny", name="obs-keys")
        with ClusterFrontend(tmp_path, shards=1, flush_interval=0) as cluster:
            cluster.add_venue(space, objects=random_objects(space, 4, seed=0))
            docs = cluster.shard_stats()
        assert len(docs) == 1
        doc = docs[0]
        for key in ("shard", "pid", "requests", "router", "log_positions",
                    "flusher"):
            assert key in doc
        assert isinstance(doc["router"], dict)
        assert "warm_starts" in doc["router"]


# ----------------------------------------------------------------------
# CLI and HTTP exposition (the scrape surfaces operators actually hit)
# ----------------------------------------------------------------------
class TestMetricsExposition:
    @pytest.fixture()
    def served_cluster(self, tmp_path):
        from repro.serving import AsyncFrontDoor

        space = build_mall("tiny", name="obs-cli")
        with ClusterFrontend(tmp_path, shards=1, flush_interval=0) as cluster:
            vid = cluster.add_venue(
                space, objects=random_objects(space, 6, seed=1))
            rng = random.Random(4)
            for _ in range(3):
                cluster.request(vid, "knn", source=random_point(space, rng),
                                k=2).result(timeout=60.0)
            cluster.drain()
            with AsyncFrontDoor(cluster) as door:
                yield cluster, door

    def test_obs_dump_prints_summarized_json(self, served_cluster, capsys):
        from repro.obs.__main__ import main as obs_cli

        _, door = served_cluster
        rc = obs_cli(["dump", "--port", str(door.address[1])])
        assert rc == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        counters = {c["name"] for c in snapshot["counters"].values()}
        assert "router_requests_total" in counters
        knn = snapshot["histograms"][
            metric_key("engine_query_seconds", {"kind": "knn"})]
        assert knn["count"] == 3
        for q in ("p50", "p95", "p99"):  # dump ships summarized quantiles
            assert knn[q] is not None

    def test_obs_dump_prometheus_text_shape(self, served_cluster, capsys):
        from repro.obs.__main__ import main as obs_cli

        _, door = served_cluster
        rc = obs_cli(["dump", "--port", str(door.address[1]),
                      "--prometheus"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "# TYPE router_requests_total counter" in text
        assert "# TYPE engine_query_seconds histogram" in text
        assert 'engine_query_seconds_bucket{kind="knn",le="+Inf"} 3' in text
        assert 'engine_query_seconds_count{kind="knn"} 3' in text
        # every sample line is name{labels} value — no blank payloads
        for line in text.splitlines():
            if line and not line.startswith("#"):
                assert len(line.rsplit(" ", 1)) == 2

    def test_metrics_http_sidecar_serves_both_formats(self, served_cluster):
        from urllib.error import HTTPError
        from urllib.request import urlopen

        from repro.serving.__main__ import _start_metrics_server

        cluster, _ = served_cluster
        server = _start_metrics_server(cluster, 0)
        try:
            port = server.server_address[1]
            with urlopen(f"http://127.0.0.1:{port}/metrics.json",
                         timeout=30.0) as response:
                assert response.headers["Content-Type"] == "application/json"
                snapshot = json.loads(response.read().decode("utf-8"))
            assert set(snapshot) == {"counters", "gauges", "histograms"}
            counters = {c["name"] for c in snapshot["counters"].values()}
            assert "router_requests_total" in counters

            with urlopen(f"http://127.0.0.1:{port}/metrics",
                         timeout=30.0) as response:
                assert response.headers["Content-Type"].startswith(
                    "text/plain")
                text = response.read().decode("utf-8")
            assert "# TYPE engine_query_seconds histogram" in text

            with pytest.raises(HTTPError) as caught:
                urlopen(f"http://127.0.0.1:{port}/nope", timeout=30.0)
            assert caught.value.code == 404
        finally:
            server.shutdown()
            server.server_close()
