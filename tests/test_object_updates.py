"""Dynamic object updates: incremental maintenance must be
indistinguishable from rebuilding.

The core contract of the paper's §3.4 object embedding is that after
*any* sequence of insert/delete/move operations the incrementally
maintained :class:`ObjectIndex` is structurally identical to one built
from scratch over the final object set — and therefore answers every
kNN/range query identically. These tests drive random update sequences
(hypothesis-style: seeded random programs over all fixture venues) and
check internals, answers against a fresh build, and answers against the
Dijkstra oracle. The engine layer is covered too: cache invalidation
must never leave a stale kNN/range answer behind, while distance/path
caches must survive updates.
"""

import random

import pytest

from repro import IPTree, ObjectIndex, UpdateOp, VIPTree
from repro.baselines import DijkstraOracle
from repro.datasets import moving_objects, random_objects, random_point
from repro.engine import QueryEngine
from repro.exceptions import QueryError


def random_ops(space, index: ObjectIndex, count: int, rng: random.Random):
    """Apply ``count`` random insert/delete/move ops through the index."""
    for _ in range(count):
        live = index.objects.live_ids()
        kind = rng.choice(["insert", "delete", "move", "move"])
        if kind == "insert" or len(live) < 2:
            index.insert(random_point(space, rng), label="new")
        elif kind == "delete":
            index.delete(rng.choice(live))
        else:
            index.move(rng.choice(live), random_point(space, rng))


def assert_index_equivalent(incremental: ObjectIndex, fresh: ObjectIndex):
    assert {k: sorted(v) for k, v in incremental.leaf_objects.items()} == {
        k: sorted(v) for k, v in fresh.leaf_objects.items()
    }
    assert incremental.access_lists == fresh.access_lists
    assert incremental.node_counts == fresh.node_counts


@pytest.mark.parametrize("venue", ["fig1", "tower", "mall", "office", "campus"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_incremental_equals_fresh_build(all_fixture_spaces, venue, seed):
    """After any random op sequence, internals and answers match a
    freshly built index."""
    space = all_fixture_spaces[venue]
    tree = VIPTree.build(space)
    rng = random.Random(seed)
    index = ObjectIndex(tree, random_objects(space, 12, seed=seed))
    random_ops(space, index, 40, rng)

    fresh = ObjectIndex(tree, index.objects)
    assert_index_equivalent(index, fresh)

    oracle = DijkstraOracle(space, tree.d2d)
    for q in [random_point(space, rng) for _ in range(3)]:
        got = [(round(n.distance, 8), n.object_id) for n in tree.knn(index, q, 4)]
        via_fresh = [(round(n.distance, 8), n.object_id) for n in tree.knn(fresh, q, 4)]
        want = [(round(d, 8), oid) for d, oid in oracle.knn(q, index.objects, 4)]
        assert got == via_fresh == want
        r_got = [(round(n.distance, 8), n.object_id) for n in tree.range_query(index, q, 40.0)]
        r_want = [(round(d, 8), oid) for d, oid in oracle.range_query(q, index.objects, 40.0)]
        assert r_got == r_want


def test_counts_bubble_up_and_down(fig1_space):
    tree = IPTree.build(fig1_space)
    index = ObjectIndex(tree, random_objects(fig1_space, 6, seed=3))
    assert index.count(tree.root_id) == 6
    pt = random_point(fig1_space, random.Random(4))
    oid = index.insert(pt)
    assert index.count(tree.root_id) == 7
    leaf = index.leaf_of_object(oid)
    for nid in tree.chain_of_leaf(leaf):
        assert index.count(nid) >= 1
    index.delete(oid)
    assert index.count(tree.root_id) == 6
    # absent == zero, never negative
    assert all(c > 0 for c in index.node_counts.values())


def test_object_set_versioning(fig1_space):
    objects = random_objects(fig1_space, 4, seed=5)
    v0 = objects.version
    pt = random_point(fig1_space, random.Random(6))
    oid = objects.insert(pt)
    objects.move(oid, pt)
    objects.delete(oid)
    assert objects.version == v0 + 3
    assert oid not in objects.live_ids()
    with pytest.raises(QueryError):
        objects[oid]
    # tombstoned ids are never reused
    assert objects.insert(pt) == oid + 1


def test_delete_unknown_object_rejected(fig1_space):
    tree = VIPTree.build(fig1_space)
    index = ObjectIndex(tree, random_objects(fig1_space, 3, seed=7))
    with pytest.raises(QueryError):
        index.delete(99)
    index.delete(1)
    with pytest.raises(QueryError):
        index.delete(1)  # already gone
    with pytest.raises(QueryError):
        index.move(1, random_point(fig1_space, random.Random(8)))


class TestEngineInvalidation:
    def test_update_invalidates_knn_and_range_only(self, fig1_space):
        tree = VIPTree.build(fig1_space)
        engine = QueryEngine(tree, random_objects(fig1_space, 8, seed=9))
        rng = random.Random(10)
        q, other = random_point(fig1_space, rng), random_point(fig1_space, rng)

        d_before = engine.distance(q, other)
        knn_before = engine.knn(q, 3)
        engine.range_query(q, 30.0)
        s0 = engine.stats()

        new_id = engine.insert_object(q)  # object at the query point itself
        knn_after = engine.knn(q, 3)
        assert knn_after != knn_before
        assert knn_after[0].object_id == new_id
        s1 = engine.stats()
        assert s1.updates == s0.updates + 1
        assert s1.invalidations == s0.invalidations + 1
        # the re-answered kNN was a recompute, not a stale hit
        assert s1.knn_hits == s0.knn_hits
        assert s1.knn_misses == s0.knn_misses + 1

        # distance/path caches survived: same query is a pure hit
        assert engine.distance(q, other) == d_before
        s2 = engine.stats()
        assert s2.distance_hits == s1.distance_hits + 1
        assert s2.distance_misses == s1.distance_misses

    def test_batch_update_single_invalidation(self, fig1_space):
        tree = VIPTree.build(fig1_space)
        engine = QueryEngine(tree, random_objects(fig1_space, 8, seed=11))
        rng = random.Random(12)
        ops = [UpdateOp("move", object_id=i, location=random_point(fig1_space, rng)) for i in range(4)]
        s0 = engine.stats()
        engine.batch_update(ops)
        s1 = engine.stats()
        assert s1.updates == s0.updates + 4
        assert s1.invalidations == s0.invalidations + 1

    def test_direct_mutation_detected_lazily(self, fig1_space):
        """Mutating the ObjectIndex behind the engine's back must not
        leave stale cached answers (version check on next kNN/range)."""
        tree = VIPTree.build(fig1_space)
        engine = QueryEngine(tree, random_objects(fig1_space, 8, seed=13))
        rng = random.Random(14)
        q = random_point(fig1_space, rng)
        engine.knn(q, 3)
        new_id = engine.object_index.insert(q)  # bypasses the engine
        got = engine.knn(q, 3)
        assert got[0].object_id == new_id
        assert engine.stats().invalidations >= 1

    def test_updates_on_objectless_engine_rejected(self, fig1_space):
        engine = QueryEngine(VIPTree.build(fig1_space))
        with pytest.raises(QueryError):
            engine.insert_object(random_point(fig1_space, random.Random(15)))

    def test_cache_disabled_engine_still_updates(self, fig1_space):
        tree = VIPTree.build(fig1_space)
        engine = QueryEngine(tree, random_objects(fig1_space, 6, seed=16), cache=False)
        rng = random.Random(17)
        q = random_point(fig1_space, rng)
        new_id = engine.insert_object(q)
        assert engine.knn(q, 1)[0].object_id == new_id
        s = engine.stats()
        assert s.updates == 1
        assert s.invalidations == 0  # nothing to flush

    def test_baseline_engine_reattaches_objects(self, fig1_space):
        from repro.baselines import DistAware

        baseline = DistAware(fig1_space)
        engine = QueryEngine(baseline, random_objects(fig1_space, 6, seed=18))
        rng = random.Random(19)
        q = random_point(fig1_space, rng)
        new_id = engine.insert_object(q)
        assert engine.knn(q, 1)[0].object_id == new_id
        engine.delete_object(new_id)
        assert all(n.object_id != new_id for n in engine.knn(q, 3))


def test_moving_stream_is_deterministic_and_applicable(mall_space):
    tree = VIPTree.build(mall_space)
    objects_a = random_objects(mall_space, 10, seed=20)
    objects_b = random_objects(mall_space, 10, seed=20)
    stream_a = moving_objects(mall_space, objects_a, 100, update_ratio=2.0, churn=0.3, seed=21, radius=30.0)
    stream_b = moving_objects(mall_space, objects_b, 100, update_ratio=2.0, churn=0.3, seed=21, radius=30.0)
    assert stream_a == stream_b
    # generation must not mutate the input set
    assert objects_a.version == 0

    engine = QueryEngine(tree, objects_a)
    for event in stream_a:
        if isinstance(event, UpdateOp):
            engine.update(event)
    fresh = ObjectIndex(tree, engine.objects)
    assert_index_equivalent(engine.object_index, fresh)


def test_moving_stream_ratio_shape(mall_space):
    objects = random_objects(mall_space, 10, seed=22)
    stream = moving_objects(mall_space, objects, 400, update_ratio=1.0, seed=23, radius=25.0)
    n_updates = sum(1 for e in stream if isinstance(e, UpdateOp))
    assert 120 <= n_updates <= 280  # ~200 expected at 1:1
    assert all(e.kind == "move" for e in stream if isinstance(e, UpdateOp))  # churn=0
    only_queries = moving_objects(mall_space, objects, 50, update_ratio=0.0, seed=24, radius=25.0)
    assert not any(isinstance(e, UpdateOp) for e in only_queries)
