"""Shared fixtures: handcrafted venues echoing the paper's running
example, generator-built venues, and prebuilt indexes.

The venue builders and point sampler live in :mod:`repro.testing` so
test modules can import them without relying on ``conftest`` being
importable (the module name collides with ``benchmarks/conftest.py``).
"""

from __future__ import annotations

import pytest

from repro import IndoorPoint, IPTree, VIPTree, make_object_set
from repro.baselines import DijkstraOracle
from repro.datasets import build_campus, build_mall, build_office
from repro.testing import (  # noqa: F401 — re-exported for fixtures below
    deadline_guard,
    make_fig1_like_space,
    make_multifloor_space,
    sample_points,
)


# ----------------------------------------------------------------------
# Wedge detection: every test marked ``net_guard`` (the network-touching
# suites set it module-wide) runs under a SIGALRM deadline — a wedged
# event loop or socket wait fails fast with an all-thread stack dump
# instead of hanging until the CI harness kills the run reportlessly.
@pytest.fixture(autouse=True)
def _net_guard(request):
    marker = request.node.get_closest_marker("net_guard")
    if marker is None:
        yield
        return
    seconds = float(marker.kwargs.get("seconds", 120.0))
    with deadline_guard(seconds):
        yield


# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def fig1_space():
    return make_fig1_like_space()


@pytest.fixture(scope="session")
def tower_space():
    return make_multifloor_space()


@pytest.fixture(scope="session")
def mall_space():
    return build_mall("tiny", name="MC-tiny")


@pytest.fixture(scope="session")
def office_space():
    return build_office("tiny", name="Men-tiny")


@pytest.fixture(scope="session")
def campus_space():
    return build_campus("tiny", name="CL-tiny")


@pytest.fixture(scope="session")
def fig1_iptree(fig1_space):
    return IPTree.build(fig1_space)


@pytest.fixture(scope="session")
def fig1_viptree(fig1_space):
    return VIPTree.build(fig1_space)


@pytest.fixture(scope="session")
def tower_iptree(tower_space):
    return IPTree.build(tower_space)


@pytest.fixture(scope="session")
def tower_viptree(tower_space):
    return VIPTree.build(tower_space)


@pytest.fixture(scope="session")
def fig1_oracle(fig1_space, fig1_iptree):
    return DijkstraOracle(fig1_space, fig1_iptree.d2d)


@pytest.fixture(scope="session")
def tower_oracle(tower_space, tower_iptree):
    return DijkstraOracle(tower_space, tower_iptree.d2d)


@pytest.fixture(scope="session")
def fig1_objects(fig1_space):
    rooms = fig1_space.fixture_rooms
    locs = [IndoorPoint(rooms[h][i], 2.0 + h * 20.0, 1.5) for h in range(4) for i in (1, 4)]
    return make_object_set(fig1_space, locs, category="washroom")


# Venues every index test can parametrize over.
@pytest.fixture(scope="session")
def all_fixture_spaces(fig1_space, tower_space, mall_space, office_space, campus_space):
    return {
        "fig1": fig1_space,
        "tower": tower_space,
        "mall": mall_space,
        "office": office_space,
        "campus": campus_space,
    }
