"""G-tree and ROAD baselines: structure, exactness and object queries."""

import pytest

from repro.baselines import DijkstraOracle, GTree, Road
from repro.datasets import random_objects
from repro.graph.partitioner import bisect, cut_size, partition_k
from repro.graph.adjacency import Graph

from repro.testing import sample_points


@pytest.fixture(scope="module")
def gtree(office_space):
    return GTree(office_space, max_leaf_size=10)


@pytest.fixture(scope="module")
def road(office_space, gtree):
    return Road(office_space, gtree.graph)


@pytest.fixture(scope="module")
def oracle(office_space, gtree):
    return DijkstraOracle(office_space, gtree.graph)


@pytest.fixture(scope="module")
def objects(office_space):
    return random_objects(office_space, 8, seed=29)


class TestPartitioner:
    def grid(self, n):
        g = Graph(n * n)
        for i in range(n):
            for j in range(n):
                v = i * n + j
                if j + 1 < n:
                    g.add_edge(v, v + 1, 1.0)
                if i + 1 < n:
                    g.add_edge(v, v + n, 1.0)
        return g

    def test_bisect_covers_and_disjoint(self):
        g = self.grid(6)
        a, b = bisect(g, list(range(36)))
        assert sorted(a + b) == list(range(36))
        assert not set(a) & set(b)

    def test_bisect_balanced(self):
        g = self.grid(6)
        a, b = bisect(g, list(range(36)))
        assert min(len(a), len(b)) >= 36 * 0.3

    def test_bisect_deterministic(self):
        g = self.grid(5)
        assert bisect(g, list(range(25))) == bisect(g, list(range(25)))

    def test_bisect_cut_reasonable(self):
        # a 6x6 grid has a 6-edge minimum bisection; allow 3x slack
        g = self.grid(6)
        a, b = bisect(g, list(range(36)))
        side = {v: 0 for v in a}
        side.update({v: 1 for v in b})
        assert cut_size(g, side) <= 18

    def test_partition_k_counts(self):
        g = self.grid(6)
        parts = partition_k(g, list(range(36)), 4)
        assert 2 <= len(parts) <= 4
        assert sorted(v for p in parts for v in p) == list(range(36))

    def test_partition_single_vertex(self):
        g = Graph(1)
        assert partition_k(g, [0], 4) == [[0]]

    def test_bisect_two_vertices(self):
        g = Graph(2)
        g.add_edge(0, 1, 1.0)
        assert bisect(g, [0, 1]) == ([0], [1])


class TestGTreeStructure:
    def test_leaves_cover_vertices(self, gtree):
        seen = sorted(v for n in gtree.nodes if n.is_leaf for v in n.vertices)
        assert seen == list(range(gtree.graph.num_vertices))

    def test_leaf_size_bound(self, gtree):
        for n in gtree.nodes:
            if n.is_leaf:
                assert len(n.vertices) <= gtree.max_leaf_size

    def test_root_has_no_borders(self, gtree):
        assert gtree.nodes[gtree.root_id].borders == []

    def test_borders_have_outside_edges(self, gtree):
        sets = gtree._node_vertex_sets()
        for node in gtree.nodes:
            vs = sets[node.nid]
            for b in node.borders:
                assert any(u not in vs for u, _ in gtree.graph.neighbors(b))

    def test_stats(self, gtree):
        s = gtree.stats()
        assert s["leaves"] >= 2
        assert s["max_borders"] >= 1


class TestGTreeQueries:
    def test_door_distance_exact_on_structured_venue(self, gtree, oracle, office_space):
        step = max(1, office_space.num_doors // 10)
        for da in range(0, office_space.num_doors, step):
            db = office_space.num_doors - 1 - da
            got = gtree.door_distance(da, db)
            expected = oracle.shortest_distance(da, db)
            assert got >= expected - 1e-9  # never underestimates
            assert got == pytest.approx(expected, abs=1e-6)

    def test_point_queries(self, gtree, oracle, office_space):
        pts = sample_points(office_space, 10, seed=81)
        for s, t in zip(pts[:5], pts[5:]):
            assert gtree.shortest_distance(s, t) == pytest.approx(
                oracle.shortest_distance(s, t), abs=1e-6
            )

    def test_shortest_path(self, gtree, oracle, office_space):
        pts = sample_points(office_space, 6, seed=82)
        for s, t in zip(pts[:3], pts[3:]):
            d, doors = gtree.shortest_path(s, t)
            assert d == pytest.approx(oracle.shortest_distance(s, t), abs=1e-9)
            for x, y in zip(doors, doors[1:]):
                assert gtree.graph.has_edge(x, y)

    def test_knn(self, gtree, oracle, office_space, objects):
        gtree.attach_objects(objects)
        for q in sample_points(office_space, 5, seed=83):
            got = gtree.knn(q, 3)
            expected = oracle.knn(q, objects, 3)
            assert [round(d, 6) for d, _ in got] == pytest.approx(
                [round(d, 6) for d, _ in expected], abs=1e-5
            )

    def test_range(self, gtree, oracle, office_space, objects):
        gtree.attach_objects(objects)
        for q in sample_points(office_space, 4, seed=84):
            got = {i for _, i in gtree.range_query(q, 25.0)}
            expected = {i for _, i in oracle.range_query(q, objects, 25.0)}
            assert got == expected

    def test_requires_attach(self, office_space, gtree):
        fresh = GTree(office_space, gtree.graph, max_leaf_size=10)
        with pytest.raises(RuntimeError):
            fresh.knn(0, 1)

    def test_memory_positive(self, gtree):
        assert gtree.memory_bytes() > 0


class TestRoad:
    def test_rnets_nested(self, road):
        for rnet in road.rnets:
            if rnet.parent is not None:
                assert rnet.vertices <= road.rnets[rnet.parent].vertices

    def test_shortcut_distances_within_subgraph(self, road, oracle):
        # shortcuts never underestimate the true distance
        for rnet in road.rnets[:6]:
            for b, edges in list(rnet.shortcuts.items())[:3]:
                for v, d in edges[:3]:
                    assert d >= oracle.shortest_distance(b, v) - 1e-9

    def test_distances_exact(self, road, oracle, office_space):
        pts = sample_points(office_space, 12, seed=85)
        for s, t in zip(pts[:6], pts[6:]):
            assert road.shortest_distance(s, t) == pytest.approx(
                oracle.shortest_distance(s, t), abs=1e-9
            )

    def test_door_distances_exact(self, road, oracle, office_space):
        n = office_space.num_doors
        for da, db in ((0, n - 1), (n // 4, 3 * n // 4), (n // 2, 0)):
            assert road.shortest_distance(da, db) == pytest.approx(
                oracle.shortest_distance(da, db), abs=1e-9
            )

    def test_shortest_path_distance(self, road, oracle, office_space):
        pts = sample_points(office_space, 6, seed=86)
        for s, t in zip(pts[:3], pts[3:]):
            d, doors = road.shortest_path(s, t)
            assert d == pytest.approx(oracle.shortest_distance(s, t), abs=1e-9)
            assert doors  # at least one door on a cross-partition path

    def test_knn(self, road, oracle, office_space, objects):
        road.attach_objects(objects)
        for q in sample_points(office_space, 5, seed=87):
            got = road.knn(q, 3)
            expected = oracle.knn(q, objects, 3)
            assert [round(d, 8) for d, _ in got] == pytest.approx(
                [round(d, 8) for d, _ in expected], abs=1e-7
            )

    def test_range(self, road, oracle, office_space, objects):
        road.attach_objects(objects)
        for q in sample_points(office_space, 4, seed=88):
            got = {i for _, i in road.range_query(q, 25.0)}
            expected = {i for _, i in oracle.range_query(q, objects, 25.0)}
            assert got == expected

    def test_requires_attach(self, office_space, road):
        fresh = Road(office_space, road.graph)
        with pytest.raises(RuntimeError):
            fresh.knn(0, 1)

    def test_stats(self, road):
        s = road.stats()
        assert s["rnets"] >= 2
        assert s["total_shortcuts"] >= 0
