"""kNN and range queries vs brute-force oracle."""

import pytest

from repro import IndoorPoint, IPTree, ObjectIndex, QueryError, VIPTree, make_object_set
from repro.baselines import DijkstraOracle
from repro.datasets import random_objects

from repro.testing import sample_points


@pytest.fixture(scope="module", params=["fig1", "tower", "office"])
def setting(request, all_fixture_spaces):
    space = all_fixture_spaces[request.param]
    ip = IPTree.build(space)
    vip = VIPTree.build(space)
    oracle = DijkstraOracle(space, ip.d2d)
    objects = random_objects(space, 9, seed=13)
    return space, ip, vip, oracle, objects


def distances(neighbors):
    return [round(n.distance, 9) for n in neighbors]


class TestKnnCorrectness:
    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_matches_bruteforce(self, setting, k):
        space, ip, vip, oracle, objects = setting
        oi_ip = ObjectIndex(ip, objects)
        oi_vip = ObjectIndex(vip, objects)
        for q in sample_points(space, 8, seed=3):
            expected = [round(d, 9) for d, _ in oracle.knn(q, objects, k)]
            assert distances(ip.knn(oi_ip, q, k)) == pytest.approx(expected, abs=1e-8)
            assert distances(vip.knn(oi_vip, q, k)) == pytest.approx(expected, abs=1e-8)

    def test_k_larger_than_objects(self, setting):
        space, ip, _, oracle, objects = setting
        oi = ObjectIndex(ip, objects)
        q = sample_points(space, 1, seed=8)[0]
        res = ip.knn(oi, q, len(objects) + 10)
        assert len(res) == len(objects)
        expected = [round(d, 9) for d, _ in oracle.knn(q, objects, len(objects))]
        assert distances(res) == pytest.approx(expected, abs=1e-8)

    def test_results_sorted(self, setting):
        space, ip, _, _, objects = setting
        oi = ObjectIndex(ip, objects)
        q = sample_points(space, 1, seed=15)[0]
        res = ip.knn(oi, q, 6)
        assert distances(res) == sorted(distances(res))

    def test_object_in_query_partition(self, fig1_space, fig1_iptree):
        room = fig1_space.fixture_rooms[2][1]
        objects = make_object_set(fig1_space, [IndoorPoint(room, 1.0, 1.0)])
        oi = ObjectIndex(fig1_iptree, objects)
        q = IndoorPoint(room, 4.0, 5.0)
        res = fig1_iptree.knn(oi, q, 1)
        assert res[0].distance == pytest.approx(5.0)

    def test_door_query_point(self, setting):
        space, ip, _, oracle, objects = setting
        oi = ObjectIndex(ip, objects)
        door = space.num_doors // 2
        expected = [round(d, 9) for d, _ in oracle.knn(door, objects, 3)]
        assert distances(ip.knn(oi, door, 3)) == pytest.approx(expected, abs=1e-8)

    def test_invalid_k(self, setting):
        _, ip, _, _, objects = setting
        oi = ObjectIndex(ip, objects)
        with pytest.raises(QueryError):
            ip.knn(oi, 0, 0)
        with pytest.raises(QueryError):
            ip.knn(oi, 0, -2)

    def test_index_tree_mismatch(self, setting, fig1_iptree):
        space, ip, _, _, objects = setting
        oi = ObjectIndex(ip, objects)
        if ip.space is fig1_iptree.space:
            pytest.skip("same venue")
        with pytest.raises(QueryError):
            fig1_iptree.knn(oi, 0, 1)


class TestRangeCorrectness:
    @pytest.mark.parametrize("radius", [5.0, 20.0, 60.0])
    def test_matches_bruteforce(self, setting, radius):
        space, ip, vip, oracle, objects = setting
        oi_ip = ObjectIndex(ip, objects)
        oi_vip = ObjectIndex(vip, objects)
        for q in sample_points(space, 6, seed=5):
            expected = [(round(d, 8), i) for d, i in oracle.range_query(q, objects, radius)]
            got_ip = [(round(n.distance, 8), n.object_id) for n in ip.range_query(oi_ip, q, radius)]
            got_vip = [(round(n.distance, 8), n.object_id) for n in vip.range_query(oi_vip, q, radius)]
            assert got_ip == expected
            assert got_vip == expected

    def test_zero_radius(self, setting):
        space, ip, _, _, objects = setting
        oi = ObjectIndex(ip, objects)
        q = sample_points(space, 1, seed=30)[0]
        res = ip.range_query(oi, q, 0.0)
        assert all(n.distance == 0.0 for n in res)

    def test_negative_radius_raises(self, setting):
        _, ip, _, _, objects = setting
        oi = ObjectIndex(ip, objects)
        with pytest.raises(QueryError):
            ip.range_query(oi, 0, -1.0)

    def test_huge_radius_returns_all(self, setting):
        space, ip, _, _, objects = setting
        oi = ObjectIndex(ip, objects)
        q = sample_points(space, 1, seed=44)[0]
        assert len(ip.range_query(oi, q, 1e9)) == len(objects)


class TestObjectIndex:
    def test_counts_aggregate_to_root(self, setting):
        _, ip, _, _, objects = setting
        oi = ObjectIndex(ip, objects)
        assert oi.count(ip.root_id) == len(objects)

    def test_leaf_counts_sum(self, setting):
        _, ip, _, _, objects = setting
        oi = ObjectIndex(ip, objects)
        leaf_total = sum(
            oi.count(n.nid) for n in ip.nodes if n.is_leaf
        )
        assert leaf_total == len(objects)

    def test_access_lists_sorted(self, setting):
        _, ip, _, _, objects = setting
        oi = ObjectIndex(ip, objects)
        for per_door in oi.access_lists.values():
            for lst in per_door.values():
                assert [d for d, _ in lst] == sorted(d for d, _ in lst)

    def test_access_list_distances_exact(self, setting):
        space, ip, _, oracle, objects = setting
        oi = ObjectIndex(ip, objects)
        for leaf_id, per_door in oi.access_lists.items():
            for door, lst in per_door.items():
                for d, oid in lst[:3]:
                    expected = oracle.shortest_distance(door, objects[oid].location)
                    assert d == pytest.approx(expected, abs=1e-9)

    def test_memory_positive(self, setting):
        _, ip, _, _, objects = setting
        oi = ObjectIndex(ip, objects)
        assert oi.memory_bytes() > 0
        assert len(oi) == len(objects)

    def test_empty_object_set(self, setting):
        space, ip, _, _, _ = setting
        oi = ObjectIndex(ip, make_object_set(space, []))
        q = sample_points(space, 1, seed=1)[0]
        assert ip.knn(oi, q, 3) == []
        assert ip.range_query(oi, q, 100.0) == []
