"""Docs checker: execute fenced python snippets and verify local links.

Keeps the repo's markdown honest — every ```python block must actually
run against the current code, and every relative markdown link must
point at a file that exists. With no arguments it **discovers every
``*.md`` file in the repository recursively** (``docs/`` included), so
new documents can never silently rot outside the check. CI runs this
alongside the test workflow; locally::

    PYTHONPATH=src python tools/check_docs.py              # everything
    PYTHONPATH=src python tools/check_docs.py docs/serving.md

Rules:

* ```python blocks in one file are executed **cumulatively**, top to
  bottom, in a single shared namespace — later snippets may use names
  the earlier ones defined (mirroring how a reader follows the doc).
* Blocks fenced with any other language (```bash, ```text, …) are
  skipped.
* Relative links/images ``[text](target)`` are resolved against the
  linking file's directory and must exist (``http(s):``/``mailto:``
  and ``#anchor`` links are skipped).
* Discovery skips hidden directories (``.git`` and friends) and the
  files in :data:`EXCLUDED_NAMES` (``ISSUE.md`` is per-PR scratch
  state, not documentation). Explicitly named files are always
  checked, excluded or not.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: file names discovery skips (explicit arguments override this)
EXCLUDED_NAMES = frozenset({"ISSUE.md"})

FENCE_RE = re.compile(r"^```(\w*)\s*$")
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def discover_markdown(root: Path = REPO_ROOT) -> list[str]:
    """Every ``*.md`` under ``root``, repo-root-relative, sorted —
    skipping hidden directories and :data:`EXCLUDED_NAMES`."""
    found = []
    for path in sorted(root.rglob("*.md")):
        rel = path.relative_to(root)
        if any(part.startswith(".") for part in rel.parts):
            continue
        if path.name in EXCLUDED_NAMES:
            continue
        found.append(str(rel))
    return found


def extract_python_blocks(text: str) -> list[tuple[int, str]]:
    """``(starting line number, source)`` for every ```python block."""
    blocks: list[tuple[int, str]] = []
    in_block = False
    lang = ""
    buf: list[str] = []
    start = 0
    for lineno, line in enumerate(text.splitlines(), 1):
        m = FENCE_RE.match(line.strip())
        if m and not in_block:
            in_block, lang, buf, start = True, m.group(1).lower(), [], lineno + 1
        elif line.strip() == "```" and in_block:
            if lang == "python":
                blocks.append((start, "\n".join(buf)))
            in_block = False
        elif in_block:
            buf.append(line)
    return blocks


def check_links(path: Path, text: str) -> list[str]:
    errors = []
    for m in LINK_RE.finditer(text):
        target = m.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#")[0]).resolve()
        if not resolved.exists():
            errors.append(f"{path.name}: broken link -> {target}")
    return errors


def check_snippets(path: Path, text: str) -> list[str]:
    errors = []
    namespace: dict = {"__name__": f"docs_{path.stem}"}
    for start, source in extract_python_blocks(text):
        try:
            code = compile(source, f"{path.name}:{start}", "exec")
            exec(code, namespace)  # noqa: S102 - that is the point
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(f"{path.name}:{start}: snippet failed: {exc!r}")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files", nargs="*",
        help="markdown files to check (default: discover every *.md "
             "in the repo, excluding hidden dirs and ISSUE.md)",
    )
    args = parser.parse_args(argv)
    files = args.files or discover_markdown()

    errors: list[str] = []
    for name in files:
        path = (REPO_ROOT / name).resolve()
        if not path.exists():
            errors.append(f"missing doc file: {name}")
            continue
        text = path.read_text()
        errors += check_links(path, text)
        errors += check_snippets(path, text)
        n = len(extract_python_blocks(text))
        print(f"{name}: {n} python snippet(s) executed")
    for e in errors:
        print(f"ERROR: {e}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    raise SystemExit(main())
