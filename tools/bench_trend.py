"""Merge per-benchmark ``BENCH_*.json`` artifacts into one summary.

Every benchmark under ``benchmarks/`` writes a machine-readable
``BENCH_<name>.json`` document (``{"bench": <name>, "schema": 1, ...,
"rows": [...]}``). CI uploads them as separate artifacts per job, which
makes cross-bench trend tracking awkward — this tool collects whatever
artifacts are present and folds them into a single
``BENCH_summary.json``::

    PYTHONPATH=src python tools/bench_trend.py                # cwd
    PYTHONPATH=src python tools/bench_trend.py --dir artifacts --out BENCH_summary.json

The summary keeps each source document whole under ``benches[<name>]``
(so nothing is lost by the merge) and lifts a small ``headline`` map of
the scalar figures worth eyeballing across runs — any row field that
looks like a comparison factor (``speedup``, ``*_factor*``) plus each
bench's row count. Missing benchmarks are fine: the summary records
only what was found, so a partial artifact set still merges cleanly.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: the merged document's own name — never re-ingested as an input
SUMMARY_NAME = "BENCH_summary.json"

#: row fields lifted into the per-bench headline (max across rows)
FACTOR_KEYS = ("speedup", "hit_factor_vs_full", "throughput_factor_vs_full")


def collect(directory: Path) -> list[Path]:
    """Every ``BENCH_*.json`` in ``directory`` except the summary
    itself, sorted by name (recursive — CI drops each job's artifact
    into its own subdirectory)."""
    return sorted(
        p for p in directory.rglob("BENCH_*.json") if p.name != SUMMARY_NAME
    )


def headline(doc: dict) -> dict:
    """The scalar figures worth comparing across runs: row count plus
    the max of every factor-like row field present."""
    rows = doc.get("rows", [])
    out = {"rows": len(rows)}
    for key in FACTOR_KEYS:
        values = [r[key] for r in rows if isinstance(r, dict) and key in r]
        if values:
            out[key] = max(values)
    return out


def merge(paths: list[Path]) -> dict:
    """Fold benchmark documents into one summary document.

    Duplicate bench names (the same artifact found twice) keep the
    last one in path order and record the collision under ``skipped``.
    Files that are not valid JSON objects are skipped the same way.
    """
    benches: dict[str, dict] = {}
    skipped: list[dict] = []
    for path in paths:
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            skipped.append({"file": str(path), "reason": str(exc)})
            continue
        if not isinstance(doc, dict) or "bench" not in doc:
            skipped.append({"file": str(path), "reason": "no 'bench' key"})
            continue
        name = doc["bench"]
        if name in benches:
            skipped.append({"file": str(path),
                            "reason": f"duplicate bench {name!r} (kept last)"})
        benches[name] = {"source": path.name,
                         "headline": headline(doc),
                         "doc": doc}
    return {
        "summary": "bench-trend",
        "schema": 1,
        "benches": dict(sorted(benches.items())),
        "skipped": skipped,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dir", default=".", metavar="DIR",
                        help="directory scanned (recursively) for "
                             "BENCH_*.json artifacts (default: cwd)")
    parser.add_argument("--out", default=SUMMARY_NAME, metavar="FILE",
                        help=f"merged output path (default: {SUMMARY_NAME})")
    args = parser.parse_args(argv)

    paths = collect(Path(args.dir))
    summary = merge(paths)
    Path(args.out).write_text(json.dumps(summary, indent=2))

    for name, entry in summary["benches"].items():
        figures = ", ".join(f"{k}={v:.2f}" if isinstance(v, float) else f"{k}={v}"
                            for k, v in entry["headline"].items())
        print(f"  {name:<16} {figures}   [{entry['source']}]")
    for item in summary["skipped"]:
        print(f"  skipped {item['file']}: {item['reason']}", file=sys.stderr)
    print(f"{len(summary['benches'])} bench(es) merged into {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
